// Tests for the observability layer: the lock-free thread-local span
// recorder (wraparound, cross-thread collection, disabled-mode inertness),
// the Chrome-trace exporter round trip, histogram merging, the Prometheus
// renderer (golden output — MetricsRegistry iterates an ordered map, so the
// exposition text is deterministic), and the replay integration contracts:
// per-txn sampling is a pure function of (seed, txn id) so the sampled set
// is identical at any client count, tracing never changes a replay's
// outcome signature, and traced txn span durations reconcile exactly with
// the report's latency histograms. Runs under ThreadSanitizer via the
// `tsan` ctest label.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/cluster_telemetry.h"
#include "obs/flight_recorder.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "obs/trace_export.h"
#include "obs/trace_recorder.h"
#include "dist/replay.h"
#include "workloads/tpcc.h"

namespace jecb {
namespace {

WorkloadBundle SmallTpcc(size_t txns = 600, uint64_t seed = 7) {
  TpccConfig cfg;
  cfg.warehouses = 4;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 20;
  cfg.initial_orders_per_district = 2;
  return TpccWorkload(cfg).Make(txns, seed);
}

RuntimeOptions FastOptions() {
  RuntimeOptions opt;
  opt.num_clients = 4;
  opt.local_work_us = 0;
  opt.round_trip_us = 0;
  opt.lock_hold_us = 0;
  return opt;
}

TraceEvent MakeSpan(const char* name, uint64_t ts, uint64_t dur) {
  TraceEvent e;
  e.name = name;
  e.cat = "test";
  e.ts_us = ts;
  e.dur_us = dur;
  e.kind = TraceEventKind::kSpan;
  return e;
}

TEST(TraceRecorderTest, RingBufferWrapsAndCountsDrops) {
  if (!kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  TraceRecorder rec;
  rec.Enable(/*events_per_thread=*/64);
  for (uint64_t i = 0; i < 200; ++i) {
    rec.Emit(MakeSpan("wrap", i, 1));
  }
  std::vector<CollectedEvent> events = rec.Collect();
  ASSERT_EQ(events.size(), 64u);
  EXPECT_EQ(rec.dropped(), 200u - 64u);
  EXPECT_EQ(rec.num_thread_buffers(), 1u);
  // The ring keeps the newest events, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].event.ts_us, 200 - 64 + i);
  }
}

TEST(TraceRecorderTest, CollectMergesThreadsSortedByTimestamp) {
  if (!kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  TraceRecorder rec;
  rec.Enable();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan span("test", "work", "thread", t, rec);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  std::vector<CollectedEvent> events = rec.Collect();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(rec.num_thread_buffers(), static_cast<size_t>(kThreads));
  EXPECT_EQ(rec.dropped(), 0u);

  std::set<uint32_t> tids;
  for (size_t i = 0; i < events.size(); ++i) {
    tids.insert(events[i].tid);
    if (i > 0) {
      EXPECT_GE(events[i].event.ts_us, events[i - 1].event.ts_us);
    }
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
  // Each thread attached its index as arg1, so every index shows up
  // kPerThread times.
  std::array<int, kThreads> per_thread{};
  for (const CollectedEvent& e : events) {
    ASSERT_STREQ(e.event.arg1_name, "thread");
    per_thread[static_cast<size_t>(e.event.arg1)]++;
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_thread[t], kPerThread);
}

TEST(TraceRecorderTest, DisabledRecorderAllocatesNothing) {
  TraceRecorder rec;  // never enabled
  EXPECT_FALSE(rec.enabled());
  rec.Emit(MakeSpan("ignored", 0, 1));
  rec.Instant("test", "ignored");
  rec.Counter("test", "ignored", 7);
  { ScopedSpan span("test", "ignored", rec); }
  EXPECT_EQ(rec.num_thread_buffers(), 0u);
  EXPECT_TRUE(rec.Collect().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorderTest, MacrosAreInertWhileDefaultRecorderDisabled) {
  TraceRecorder& rec = TraceRecorder::Default();
  rec.Reset();  // disables and drops any buffers earlier tests created
  ASSERT_FALSE(rec.enabled());
  {
    JECB_SPAN("test", "inert");
    JECB_SPAN2("test", "inert2", "a", 1, "b", 2);
    JECB_INSTANT1("test", "inert3", "a", 1);
    JECB_COUNTER("test", "inert4", 42);
  }
  EXPECT_EQ(rec.num_thread_buffers(), 0u);
  EXPECT_TRUE(rec.Collect().empty());
}

TEST(TraceRecorderTest, InternIsIdempotentAndSurvivesReset) {
  TraceRecorder rec;
  const char* a = rec.Intern("NewOrder/5");
  const char* b = rec.Intern(std::string("NewOrder/") + "5");
  EXPECT_EQ(a, b);
  rec.Enable(16);
  rec.Emit(MakeSpan(a, 1, 2));
  rec.Reset();
  EXPECT_EQ(rec.Intern("NewOrder/5"), a);
}

TEST(TraceRecorderTest, ScopedSpanLateArgsAttachInOrder) {
  if (!kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  TraceRecorder rec;
  rec.Enable(16);
  {
    ScopedSpan span("test", "late", rec);
    span.Arg("first", 11);
    span.Arg("second", 22);
    span.Arg("ignored", 33);  // both slots taken
  }
  std::vector<CollectedEvent> events = rec.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].event.arg1_name, "first");
  EXPECT_EQ(events[0].event.arg1, 11);
  EXPECT_STREQ(events[0].event.arg2_name, "second");
  EXPECT_EQ(events[0].event.arg2, 22);
}

TEST(TraceExportTest, ChromeTraceRoundTripsThroughParser) {
  if (!kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  TraceRecorder rec;
  rec.Enable(256);
  rec.Span("runtime", "txn.local", 10, 5, "txn", 1, "shard", 2);
  rec.Span("runtime", "txn.local", 20, 7, "txn", 3, "shard", 0);
  rec.Span("jecb", "phase1.preprocess", 5, 100, "tables", 9);
  rec.Instant("fault", "fault.stall", "txn", 4, "shard", 1);
  rec.Counter("runtime", "queue_depth", 17);

  std::string json = rec.RenderChromeTrace();
  std::vector<ChromeTraceEvent> parsed;
  std::string error;
  ASSERT_TRUE(ParseChromeTrace(json, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 5u);

  size_t spans = 0, instants = 0, counters = 0;
  for (const ChromeTraceEvent& e : parsed) {
    if (e.ph == "X") ++spans;
    if (e.ph == "i" || e.ph == "I") ++instants;
    if (e.ph == "C") ++counters;
  }
  EXPECT_EQ(spans, 3u);
  EXPECT_EQ(instants, 1u);
  EXPECT_EQ(counters, 1u);

  std::vector<SpanRollup> rollups = RollupSpans(parsed);
  ASSERT_EQ(rollups.size(), 2u);
  // Sorted by total duration descending: phase1 (100us) before txn.local
  // (12us total across two spans).
  EXPECT_EQ(rollups[0].name, "phase1.preprocess");
  EXPECT_EQ(rollups[0].count, 1u);
  EXPECT_EQ(rollups[0].total_us, 100u);
  EXPECT_EQ(rollups[1].name, "txn.local");
  EXPECT_EQ(rollups[1].count, 2u);
  EXPECT_EQ(rollups[1].total_us, 12u);
  EXPECT_EQ(rollups[1].max_us, 7u);

  // Arg values survive the round trip.
  for (const ChromeTraceEvent& e : parsed) {
    if (e.ph == "X" && e.ts_us == 10) {
      ASSERT_EQ(e.args.size(), 2u);
      EXPECT_EQ(e.args[0].first, "txn");
      EXPECT_EQ(e.args[0].second, 1.0);
      EXPECT_EQ(e.args[1].first, "shard");
      EXPECT_EQ(e.args[1].second, 2.0);
    }
  }
}

TEST(TraceExportTest, JsonEscapingRoundTripsHostileNames) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string_view("nul\0byte", 8)), "nul\\u0000byte");

  // An interned class name containing quotes/newlines must not corrupt the
  // trace document.
  if (kObsCompiledIn) {
    TraceRecorder rec;
    rec.Enable(16);
    const char* hostile = rec.Intern("class \"A\"\njoins B");
    rec.Span("jecb", hostile, 1, 2);
    std::vector<ChromeTraceEvent> parsed;
    std::string error;
    ASSERT_TRUE(ParseChromeTrace(rec.RenderChromeTrace(), &parsed, &error)) << error;
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].name, "class \"A\"\njoins B");
  }
}

TEST(HistogramTest, MergeAccumulatesExactly) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(0);
  a.Record(3);
  a.Record(100);
  b.Record(7);
  b.Record(5000);

  a.Merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.sum_us(), 0u + 3 + 100 + 7 + 5000);
  EXPECT_EQ(a.max_us(), 5000u);
  EXPECT_GE(a.Quantile(0.99), a.Quantile(0.5));

  // Merging an empty histogram is a no-op.
  LatencyHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.sum_us(), 5110u);

  // Self-merge snapshots first, so it exactly doubles every counter.
  a.Merge(a);
  EXPECT_EQ(a.count(), 10u);
  EXPECT_EQ(a.sum_us(), 2u * 5110u);
  EXPECT_EQ(a.max_us(), 5000u);
}

TEST(HistogramTest, MergeOfDataSnapshotsMatchesDirectRecording) {
  LatencyHistogram direct;
  LatencyHistogram left;
  LatencyHistogram right;
  for (uint64_t v : {1u, 2u, 17u, 300u}) {
    direct.Record(v);
    left.Record(v);
  }
  for (uint64_t v : {4u, 9000u}) {
    direct.Record(v);
    right.Record(v);
  }
  HistogramData merged = left.Snapshot();
  merged.Merge(right.Snapshot());
  HistogramData expected = direct.Snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum_us, expected.sum_us);
  EXPECT_EQ(merged.buckets, expected.buckets);
  EXPECT_DOUBLE_EQ(merged.Quantile(0.5), expected.Quantile(0.5));
}

TEST(MetricsRegistryTest, PrometheusGoldenOutput) {
  MetricsRegistry reg;
  reg.Counter("jecb_test_total{label=\"a\"}", "things counted")
      .fetch_add(3, std::memory_order_relaxed);
  reg.Counter("jecb_test_total{label=\"b\"}")
      .fetch_add(5, std::memory_order_relaxed);
  reg.SetGauge("jecb_test_ratio", 0.25);
  reg.Gauge("jecb_test_ratio", "fraction of things");  // attach help
  LatencyHistogram& h = reg.Histogram("jecb_test_us", "latency");
  h.Record(0);
  h.Record(3);
  h.Record(100);

  const char* expected =
      "# HELP jecb_test_ratio fraction of things\n"
      "# TYPE jecb_test_ratio gauge\n"
      "jecb_test_ratio 0.25\n"
      "# HELP jecb_test_total things counted\n"
      "# TYPE jecb_test_total counter\n"
      "jecb_test_total{label=\"a\"} 3\n"
      "jecb_test_total{label=\"b\"} 5\n"
      "# HELP jecb_test_us latency\n"
      "# TYPE jecb_test_us histogram\n"
      "jecb_test_us_bucket{le=\"1\"} 1\n"
      "jecb_test_us_bucket{le=\"2\"} 1\n"
      "jecb_test_us_bucket{le=\"4\"} 2\n"
      "jecb_test_us_bucket{le=\"8\"} 2\n"
      "jecb_test_us_bucket{le=\"16\"} 2\n"
      "jecb_test_us_bucket{le=\"32\"} 2\n"
      "jecb_test_us_bucket{le=\"64\"} 2\n"
      "jecb_test_us_bucket{le=\"128\"} 3\n"
      "jecb_test_us_bucket{le=\"+Inf\"} 3\n"
      "jecb_test_us_sum 103\n"
      "jecb_test_us_count 3\n";
  EXPECT_EQ(reg.RenderPrometheus(), expected);
}

TEST(MetricsRegistryTest, LabeledHistogramMergesLabelsWithLe) {
  MetricsRegistry reg;
  reg.Histogram("jecb_lat_us{label=\"x\"}").Record(2);
  std::string out = reg.RenderPrometheus();
  EXPECT_NE(out.find("jecb_lat_us_bucket{label=\"x\",le=\"4\"} 1"),
            std::string::npos);
  EXPECT_NE(out.find("jecb_lat_us_bucket{label=\"x\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(out.find("jecb_lat_us_sum{label=\"x\"} 2"), std::string::npos);
  EXPECT_NE(out.find("jecb_lat_us_count{label=\"x\"} 1"), std::string::npos);
}

TEST(MetricsRegistryTest, KindMismatchKeepsOriginalMetric) {
  MetricsRegistry reg;
  reg.Counter("jecb_mismatch").fetch_add(4, std::memory_order_relaxed);
  // Asking for the same name as a gauge must not crash or clobber.
  reg.SetGauge("jecb_mismatch", 99.0);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_NE(reg.RenderPrometheus().find("jecb_mismatch 4"), std::string::npos);
}

TEST(SamplingTest, TxnTraceSampledIsPureAndRateBounded) {
  // Pure function: identical inputs, identical verdicts.
  for (uint64_t txn = 0; txn < 100; ++txn) {
    EXPECT_EQ(TxnTraceSampled(0x5ECB, txn, 0.5), TxnTraceSampled(0x5ECB, txn, 0.5));
  }
  // Degenerate rates short-circuit.
  EXPECT_TRUE(TxnTraceSampled(1, 42, 1.0));
  EXPECT_TRUE(TxnTraceSampled(1, 42, 2.0));
  EXPECT_FALSE(TxnTraceSampled(1, 42, 0.0));
  EXPECT_FALSE(TxnTraceSampled(1, 42, -1.0));
  // The hash keeps the sampled fraction near the requested rate.
  size_t sampled = 0;
  for (uint64_t txn = 0; txn < 10000; ++txn) {
    sampled += TxnTraceSampled(7, txn, 0.25) ? 1 : 0;
  }
  EXPECT_GT(sampled, 2000u);
  EXPECT_LT(sampled, 3000u);
  // Different seeds pick different subsets.
  size_t agree = 0;
  for (uint64_t txn = 0; txn < 1000; ++txn) {
    agree += TxnTraceSampled(1, txn, 0.5) == TxnTraceSampled(2, txn, 0.5) ? 1 : 0;
  }
  EXPECT_LT(agree, 1000u);
}

/// Replays with the default recorder enabled and returns the set of txn ids
/// that produced a terminal span (txn.local / txn.dist / txn.failed), plus
/// the report, resetting the recorder afterwards.
std::pair<std::set<int64_t>, ReplayReport> TracedReplay(
    const WorkloadBundle& b, const DatabaseSolution& solution,
    RuntimeOptions opt) {
  TraceRecorder& rec = TraceRecorder::Default();
  rec.Reset();
  rec.Enable();
  ReplayReport report = Replay(*b.db, solution, b.trace, opt, "obs-test");
  std::set<int64_t> sampled;
  for (const CollectedEvent& e : rec.Collect()) {
    std::string_view name = e.event.name;
    if (name == "txn.local" || name == "txn.dist" || name == "txn.failed") {
      sampled.insert(e.event.arg1);  // arg1 is the txn id
    }
  }
  EXPECT_EQ(rec.dropped(), 0u);
  rec.Reset();
  return {std::move(sampled), std::move(report)};
}

TEST(SamplingTest, SampledSetIdenticalAcrossClientCountsAndOutcomeUnchanged) {
  WorkloadBundle b = SmallTpcc();
  DatabaseSolution solution = MakeNaiveHashSolution(*b.db, 4);

  RuntimeOptions base = FastOptions();
  base.trace_sample_rate = 0.5;
  base.faults.seed = 0xBEEF;

  // Baseline outcome with tracing fully off.
  TraceRecorder::Default().Reset();
  ReplayReport untraced = Replay(*b.db, solution, b.trace, base, "obs-test");
  const uint64_t untraced_sig = untraced.OutcomeSignature();

  std::set<int64_t> first_set;
  for (int clients : {1, 4, 8}) {
    RuntimeOptions opt = base;
    opt.num_clients = clients;
    auto [sampled, report] = TracedReplay(b, solution, opt);
    // Sampling is keyed on (seed, txn id) only — the sampled set cannot
    // depend on scheduling.
    if (clients == 1) {
      first_set = sampled;
      if (kObsCompiledIn) {
        EXPECT_GT(sampled.size(), b.trace.size() / 4);
        EXPECT_LT(sampled.size(), 3 * b.trace.size() / 4);
      }
    } else {
      EXPECT_EQ(sampled, first_set) << "sampled txn set diverged at "
                                    << clients << " clients";
    }
    // Tracing is observational: the outcome signature matches the untraced
    // replay at every client count.
    EXPECT_EQ(report.OutcomeSignature(), untraced_sig);
  }
}

TEST(SamplingTest, SampleRateZeroEmitsNoTxnSpans) {
  WorkloadBundle b = SmallTpcc(300);
  DatabaseSolution solution = MakeNaiveHashSolution(*b.db, 4);
  RuntimeOptions opt = FastOptions();
  opt.trace_sample_rate = 0.0;
  auto [sampled, report] = TracedReplay(b, solution, opt);
  EXPECT_TRUE(sampled.empty());
  EXPECT_EQ(report.committed, 300u);
}

TEST(ReconciliationTest, TxnSpanDurationsMatchReportHistograms) {
  if (!kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  WorkloadBundle b = SmallTpcc();
  DatabaseSolution solution = MakeNaiveHashSolution(*b.db, 4);
  RuntimeOptions opt = FastOptions();
  opt.trace_sample_rate = 1.0;  // trace every txn

  TraceRecorder& rec = TraceRecorder::Default();
  rec.Reset();
  rec.Enable();
  ReplayReport report = Replay(*b.db, solution, b.trace, opt, "obs-test");
  std::vector<CollectedEvent> events = rec.Collect();
  EXPECT_EQ(rec.dropped(), 0u);
  rec.Reset();

  uint64_t local_spans = 0, local_dur = 0;
  uint64_t dist_spans = 0, dist_dur = 0;
  for (const CollectedEvent& e : events) {
    std::string_view name = e.event.name;
    if (name == "txn.local") {
      ++local_spans;
      local_dur += e.event.dur_us;
    } else if (name == "txn.dist") {
      ++dist_spans;
      dist_dur += e.event.dur_us;
    }
  }
  // Every committed txn produced exactly one terminal span whose duration
  // is the same latency value the report's histograms recorded — the trace
  // and the metrics cannot disagree.
  EXPECT_EQ(local_spans, report.local.count);
  EXPECT_EQ(local_dur, report.local_hist.sum_us);
  EXPECT_EQ(dist_spans, report.distributed.count);
  EXPECT_EQ(dist_dur, report.distributed_hist.sum_us);
  EXPECT_EQ(local_spans + dist_spans, report.committed);
  EXPECT_GT(dist_spans, 0u);  // naive hash makes plenty of distributed txns
}

TEST(ReplayRenderersTest, PrometheusAndAsciiAgreeWithReport) {
  WorkloadBundle b = SmallTpcc(300);
  DatabaseSolution solution = MakeNaiveHashSolution(*b.db, 2);
  TraceRecorder::Default().Reset();
  ReplayReport report = Replay(*b.db, solution, b.trace, FastOptions(), "r\"x");

  std::string prom = report.ToPrometheus();
  // The label is JSON-escaped so the quote cannot break the series name.
  EXPECT_NE(prom.find("label=\"r\\\"x\""), std::string::npos);
  EXPECT_NE(prom.find("jecb_replay_txns_total{label=\"r\\\"x\"} 300"),
            std::string::npos);
  EXPECT_NE(prom.find("jecb_replay_local_latency_us_count"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE jecb_replay_local_latency_us histogram"),
            std::string::npos);
  // Per-shard series carry both labels.
  EXPECT_NE(prom.find("shard=\"0\""), std::string::npos);
  EXPECT_NE(prom.find("shard=\"1\""), std::string::npos);

  std::string ascii = report.ToAscii();
  EXPECT_NE(ascii.find("r\"x"), std::string::npos);
  EXPECT_NE(ascii.find("committed"), std::string::npos);
}

TEST(TraceRecorderTest, DrainDeliversEachEventOnceAndKeepsCollectIntact) {
  if (!kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  TraceRecorder rec;
  rec.Enable(64);
  for (uint64_t i = 0; i < 3; ++i) rec.Emit(MakeSpan("first", i, 1));
  EXPECT_EQ(rec.Drain().size(), 3u);
  // The watermark advanced: nothing new means nothing drained.
  EXPECT_TRUE(rec.Drain().empty());
  for (uint64_t i = 10; i < 12; ++i) rec.Emit(MakeSpan("second", i, 1));
  std::vector<CollectedEvent> second = rec.Drain();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_STREQ(second[0].event.name, "second");
  // Drain is non-destructive: the postmortem path (Collect) still sees the
  // full surviving window.
  EXPECT_EQ(rec.Collect().size(), 5u);
}

TEST(TraceRecorderTest, ThreadNamesRegisterPerBuffer) {
  if (!kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  TraceRecorder rec;
  rec.Enable(16);
  rec.SetThreadName("control-loop");
  rec.Emit(MakeSpan("named", 1, 1));
  std::vector<std::pair<uint32_t, std::string>> names = rec.ThreadNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0].second, "control-loop");
  std::vector<CollectedEvent> events = rec.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tid, names[0].first);
}

TEST(ClusterTraceTest, MergedTraceCarriesProcessTracksAndShiftsClocks) {
  // Hand-built tracks, so this is exporter-only and runs in both configs.
  ProcessTrace coord;
  coord.pid = 100;
  coord.name = "coordinator";
  CollectedEvent e;
  e.event = MakeSpan("drive", 500, 10);
  e.tid = 1;
  coord.events.push_back(e);

  ProcessTrace shard;
  shard.pid = 200;
  shard.name = "shard-3";
  shard.clock_offset_us = 400;  // shard clock runs 400us ahead
  shard.thread_names = {{7, "control"}};
  e.event = MakeSpan("serve", 900, 10);  // = 500 in coordinator time
  e.tid = 7;
  shard.events.push_back(e);

  std::string json = ClusterTraceJson({coord, shard});
  std::vector<ChromeTraceEvent> parsed;
  std::string error;
  ASSERT_TRUE(ParseChromeTrace(json, &parsed, &error)) << error;

  std::map<int64_t, std::string> process_names;
  std::map<std::pair<int64_t, int64_t>, std::string> thread_names;
  std::map<int64_t, uint64_t> span_ts;
  for (const ChromeTraceEvent& ev : parsed) {
    if (ev.ph == "M" && ev.name == "process_name") {
      for (const auto& [k, v] : ev.sargs) {
        if (k == "name") process_names[ev.pid] = v;
      }
    } else if (ev.ph == "M" && ev.name == "thread_name") {
      for (const auto& [k, v] : ev.sargs) {
        if (k == "name") thread_names[{ev.pid, ev.tid}] = v;
      }
    } else if (ev.ph == "X") {
      span_ts[ev.pid] = ev.ts_us;
    }
  }
  EXPECT_EQ(process_names[100], "coordinator");
  EXPECT_EQ(process_names[200], "shard-3");
  EXPECT_EQ((thread_names[{200, 7}]), "control");
  // The remote track was shifted into the coordinator timebase.
  EXPECT_EQ(span_ts[100], 500u);
  EXPECT_EQ(span_ts[200], 500u);
}

TEST(ClusterTelemetryTest, IngestMergesBatchesAndRendersRemoteMetrics) {
  ClusterTelemetry sink;
  TraceRecorder interner;

  RemoteProcessTelemetry batch;
  batch.pid = 4242;
  batch.shard = 1;
  batch.name = "shard-1";
  batch.clock_offset_us = -25;
  CollectedEvent e;
  e.event = MakeSpan(interner.Intern("exec"), 100, 5);
  batch.events.push_back(e);
  MetricsRegistry::ScalarSample s;
  s.name = "jecb_shard_frames_total{shard=\"1\"}";
  s.is_gauge = false;
  s.count = 17;
  batch.metrics.push_back(s);
  sink.Ingest(std::move(batch));

  // A second batch from the same pid appends events, replaces metrics, and
  // carries the latest clock-offset estimate (latest wins — every harvest
  // ships the coordinator's current best estimate for that shard).
  RemoteProcessTelemetry more;
  more.pid = 4242;
  more.shard = 1;
  more.name = "shard-1";
  more.clock_offset_us = -30;
  e.event = MakeSpan(interner.Intern("exec"), 200, 5);
  more.events.push_back(e);
  s.count = 34;
  more.metrics.push_back(s);
  sink.Ingest(std::move(more));

  EXPECT_EQ(sink.num_processes(), 1u);
  EXPECT_EQ(sink.num_events(), 2u);
  std::vector<RemoteProcessTelemetry> snap = sink.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].pid, 4242);
  EXPECT_EQ(snap[0].clock_offset_us, -30);
  std::string prom = sink.RenderRemoteMetrics();
  EXPECT_NE(prom.find("jecb_shard_frames_total{shard=\"1\"} 34"),
            std::string::npos);
  EXPECT_EQ(prom.find(" 17"), std::string::npos);
}

TEST(FlightRecorderTest, DumpWritesParseableDocumentWithHeader) {
  std::string path = "obs_test_postmortem.json";
  ConfigureFlightRecorder(path, /*shard=*/3);
  ASSERT_TRUE(FlightRecorderConfigured());
  EXPECT_EQ(FlightRecorderPath(), path);

  TraceRecorder& rec = TraceRecorder::Default();
  rec.Reset();
  rec.Enable(64);
  rec.Emit(MakeSpan("last.words", 1, 2));
  ASSERT_TRUE(DumpFlightRecorder("test sigterm"));
  rec.Reset();

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string doc = buf.str();
  std::remove(path.c_str());

  // Perfetto-compatible: the extra keys do not break the trace parser.
  std::vector<ChromeTraceEvent> events;
  std::string error;
  ASSERT_TRUE(ParseChromeTrace(doc, &events, &error)) << error;
  if (kObsCompiledIn) {
    bool found = false;
    for (const ChromeTraceEvent& ev : events) found |= ev.name == "last.words";
    EXPECT_TRUE(found);
  }

  PostmortemHeader header;
  ASSERT_TRUE(ParsePostmortemHeader(doc, &header));
  EXPECT_EQ(header.shard, 3);
  EXPECT_EQ(header.reason, "test sigterm");
  EXPECT_GT(header.pid, 0);

  ConfigureFlightRecorder("", -1);  // disarm
  EXPECT_FALSE(FlightRecorderConfigured());
  EXPECT_FALSE(DumpFlightRecorder("disarmed"));
}

}  // namespace
}  // namespace jecb
