// Shared fixtures: the paper's Figure 1 example database (HOLDING_SUMMARY,
// TRADE, CUSTOMER_ACCOUNT + CUSTOMER) with the CustInfo transaction class,
// used across JECB unit tests exactly as the paper uses it in Examples 1-8.
#pragma once

#include <memory>

#include "catalog/schema.h"
#include "sql/parser.h"
#include "storage/database.h"
#include "trace/trace.h"

namespace jecb::testing {

/// Schema of the paper's Figure 1 (plus the CUSTOMER table implied by
/// CA_C_ID and used from Example 5 onward):
///   CUSTOMER(C_ID pk, C_TAX_ID unique)
///   CUSTOMER_ACCOUNT(CA_ID pk, CA_C_ID fk -> CUSTOMER)
///   TRADE(T_ID pk, T_CA_ID fk -> CUSTOMER_ACCOUNT, T_QTY)
///   HOLDING_SUMMARY((HS_S_SYMB, HS_CA_ID) pk, HS_CA_ID fk -> CA, HS_QTY)
inline Schema MakeCustInfoSchema() {
  Schema s;
  auto add_table = [&](const char* name, std::initializer_list<const char*> int_cols,
                       std::initializer_list<const char*> str_cols,
                       std::vector<std::string> pk) {
    TableId tid = s.AddTable(name).value();
    for (const char* c : str_cols) {
      CheckOk(s.AddColumn(tid, c, ValueType::kString), "test schema");
    }
    for (const char* c : int_cols) {
      CheckOk(s.AddColumn(tid, c, ValueType::kInt64), "test schema");
    }
    CheckOk(s.SetPrimaryKey(tid, pk), "test schema");
    return tid;
  };
  add_table("CUSTOMER", {"C_ID", "C_TAX_ID"}, {}, {"C_ID"});
  CheckOk(s.AddUniqueKey(s.FindTable("CUSTOMER").value(), {"C_TAX_ID"}), "test schema");
  add_table("CUSTOMER_ACCOUNT", {"CA_ID", "CA_C_ID"}, {}, {"CA_ID"});
  add_table("TRADE", {"T_ID", "T_CA_ID", "T_QTY"}, {}, {"T_ID"});
  add_table("HOLDING_SUMMARY", {"HS_CA_ID", "HS_QTY"}, {"HS_S_SYMB"},
            {"HS_S_SYMB", "HS_CA_ID"});
  CheckOk(s.AddForeignKey("CUSTOMER_ACCOUNT", {"CA_C_ID"}, "CUSTOMER", {"C_ID"}),
          "test schema");
  CheckOk(s.AddForeignKey("TRADE", {"T_CA_ID"}, "CUSTOMER_ACCOUNT", {"CA_ID"}),
          "test schema");
  CheckOk(s.AddForeignKey("HOLDING_SUMMARY", {"HS_CA_ID"}, "CUSTOMER_ACCOUNT", {"CA_ID"}),
          "test schema");
  return s;
}

/// The exact data of Figure 1. Customer 1 owns accounts {1, 8}; customer 2
/// owns {7, 10}.
struct CustInfoDb {
  std::unique_ptr<Database> db;
  std::vector<TupleId> customers;         // by C_ID - 1
  std::vector<TupleId> accounts;          // in insertion order: 1, 7, 8, 10
  std::vector<TupleId> trades;            // T_ID 1..8
  std::vector<TupleId> holding_summaries; // Figure 1 order
};

inline CustInfoDb MakeCustInfoDb() {
  CustInfoDb out;
  out.db = std::make_unique<Database>(MakeCustInfoSchema());
  Database& db = *out.db;
  out.customers.push_back(db.MustInsert("CUSTOMER", {int64_t(1), int64_t(901)}));
  out.customers.push_back(db.MustInsert("CUSTOMER", {int64_t(2), int64_t(902)}));
  for (auto [ca, c] : {std::pair{1, 1}, {7, 2}, {8, 1}, {10, 2}}) {
    out.accounts.push_back(
        db.MustInsert("CUSTOMER_ACCOUNT", {int64_t(ca), int64_t(c)}));
  }
  // TRADE rows of Figure 1: (T_ID, T_CA_ID, T_QTY).
  const int trade_rows[8][3] = {{1, 1, 2}, {2, 7, 1},  {3, 10, 3}, {4, 8, 1},
                                {5, 8, 3}, {6, 7, 4}, {7, 1, 1},  {8, 10, 1}};
  for (const auto& r : trade_rows) {
    out.trades.push_back(
        db.MustInsert("TRADE", {int64_t(r[0]), int64_t(r[1]), int64_t(r[2])}));
  }
  // HOLDING_SUMMARY rows of Figure 1: (HS_S_SYMB, HS_CA_ID, HS_QTY).
  const std::tuple<const char*, int, int> hs_rows[] = {
      {"ADLAE", 1, 3}, {"APCFY", 1, 5}, {"AQLC", 7, 6},  {"ASTT", 10, 4},
      {"BEBE", 10, 5}, {"BLS", 8, 9},   {"CAV", 8, 3},   {"CPN", 7, 1}};
  for (const auto& [symb, ca, qty] : hs_rows) {
    out.holding_summaries.push_back(db.MustInsert(
        "HOLDING_SUMMARY", {std::string(symb), int64_t(ca), int64_t(qty)}));
  }
  return out;
}

/// The CustInfo stored procedure from Example 1.
inline const char* CustInfoSql() {
  return R"SQL(
PROCEDURE CustInfo(@cust_id) {
  SELECT SUM(HS_QTY) FROM HOLDING_SUMMARY JOIN CUSTOMER_ACCOUNT ON HS_CA_ID = CA_ID
    WHERE CA_C_ID = @cust_id;
  SELECT AVERAGE(T_QTY) FROM TRADE JOIN CUSTOMER_ACCOUNT ON T_CA_ID = CA_ID
    WHERE CA_C_ID = @cust_id;
}
)SQL";
}

/// A CustInfo trace: each transaction reads one customer's accounts, trades
/// and holding summaries (the tuples Figure 1 colors by customer).
inline Trace MakeCustInfoTrace(const CustInfoDb& fixture, int repetitions = 4) {
  Trace trace;
  uint32_t cls = trace.InternClass("CustInfo");
  const Database& db = *fixture.db;
  for (int rep = 0; rep < repetitions; ++rep) {
    for (int64_t cust = 1; cust <= 2; ++cust) {
      Transaction txn;
      txn.class_id = cls;
      for (TupleId ca : fixture.accounts) {
        if (db.GetValue(ca, 1).AsInt() == cust) txn.Read(ca);
      }
      for (TupleId t : fixture.trades) {
        int64_t ca_id = db.GetValue(t, 1).AsInt();
        bool mine = (cust == 1) ? (ca_id == 1 || ca_id == 8) : (ca_id == 7 || ca_id == 10);
        if (mine) txn.Read(t);
      }
      for (TupleId hs : fixture.holding_summaries) {
        int64_t ca_id = db.GetValue(hs, 1).AsInt();
        bool mine = (cust == 1) ? (ca_id == 1 || ca_id == 8) : (ca_id == 7 || ca_id == 10);
        if (mine) txn.Read(hs);
      }
      trace.Add(std::move(txn));
    }
  }
  return trace;
}

}  // namespace jecb::testing
