#include <gtest/gtest.h>

#include <cstdio>

#include "jecb/jecb.h"
#include "partition/evaluator.h"
#include "partition/solution_io.h"
#include "test_util.h"

namespace jecb {
namespace {

class SolutionIoTest : public ::testing::Test {
 protected:
  SolutionIoTest() : fixture_(testing::MakeCustInfoDb()) {}

  /// A representative solution: one replication, one multi-hop path with a
  /// lookup mapping, one zero-hop path with range.
  DatabaseSolution MakeSolution() {
    const Schema& s = schema();
    DatabaseSolution sol(2, s.num_tables());
    sol.Set(s.FindTable("CUSTOMER").value(), std::make_shared<ReplicatedTable>());
    sol.Set(s.FindTable("HOLDING_SUMMARY").value(), std::make_shared<ReplicatedTable>());

    JoinPath ca_path;
    ca_path.source_table = s.FindTable("CUSTOMER_ACCOUNT").value();
    ca_path.dest = s.ResolveQualified("CUSTOMER_ACCOUNT.CA_C_ID").value();
    sol.Set(ca_path.source_table,
            std::make_shared<JoinPathPartitioner>(
                ca_path, std::make_shared<RangeMapping>(2, 1, 2)));

    FkIdx trade_ca = 0;
    for (FkIdx f = 0; f < s.foreign_keys().size(); ++f) {
      if (s.foreign_keys()[f].table == s.FindTable("TRADE").value()) trade_ca = f;
    }
    JoinPath trade_path;
    trade_path.source_table = s.FindTable("TRADE").value();
    trade_path.hops = {trade_ca};
    trade_path.dest = s.ResolveQualified("CUSTOMER_ACCOUNT.CA_C_ID").value();
    std::unordered_map<Value, int32_t, ValueHashFunctor> lookup;
    lookup[Value(1)] = 0;
    lookup[Value(2)] = 1;
    sol.Set(trade_path.source_table,
            std::make_shared<JoinPathPartitioner>(
                trade_path, std::make_shared<LookupMapping>(2, std::move(lookup))));
    return sol;
  }

  const Schema& schema() const { return fixture_.db->schema(); }
  testing::CustInfoDb fixture_;
};

TEST_F(SolutionIoTest, RoundTripPreservesPlacement) {
  DatabaseSolution original = MakeSolution();
  auto text = SolutionToString(schema(), original);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto loaded = SolutionFromString(text.value(), schema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_partitions(), 2);
  // Every stored tuple must land on the same partition after the round trip.
  for (size_t t = 0; t < schema().num_tables(); ++t) {
    auto tid = static_cast<TableId>(t);
    const TableData& data = fixture_.db->table_data(tid);
    for (RowId r = 0; r < data.num_rows(); ++r) {
      TupleId tuple{tid, r};
      EXPECT_EQ(original.PartitionOf(*fixture_.db, tuple),
                loaded.value().PartitionOf(*fixture_.db, tuple))
          << schema().table(tid).name << " row " << r;
    }
  }
}

TEST_F(SolutionIoTest, FileRoundTrip) {
  DatabaseSolution original = MakeSolution();
  std::string path = ::testing::TempDir() + "/jecb_solution_io_test.sol";
  ASSERT_TRUE(SaveSolution(path, schema(), original).ok());
  auto loaded = LoadSolution(path, schema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST_F(SolutionIoTest, JecbOutputRoundTrips) {
  Trace trace = testing::MakeCustInfoTrace(fixture_, 6);
  for (auto& txn : trace.mutable_transactions()) {
    for (auto& a : txn.accesses) a.write = true;
  }
  auto procs = sql::ParseProcedures(testing::CustInfoSql()).value();
  JecbOptions opt;
  opt.num_partitions = 2;
  auto res = Jecb(opt).Partition(fixture_.db.get(), procs, trace);
  ASSERT_TRUE(res.ok());
  auto text = SolutionToString(schema(), res.value().solution);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto loaded = SolutionFromString(text.value(), schema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ(Evaluate(*fixture_.db, loaded.value(), trace).cost(),
                   Evaluate(*fixture_.db, res.value().solution, trace).cost());
}

TEST_F(SolutionIoTest, ClassifierSolutionsAreUnsupported) {
  DatabaseSolution sol(2, schema().num_tables());
  sol.Set(0, std::make_shared<CallbackPartitioner>(
                 [](const Database&, TupleId) { return 0; }, "classifier"));
  auto text = SolutionToString(schema(), sol);
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kUnsupported);
}

TEST_F(SolutionIoTest, MalformedInputsRejected) {
  const Schema& s = schema();
  EXPECT_FALSE(SolutionFromString("", s).ok());
  EXPECT_FALSE(SolutionFromString("REPLICATE TRADE\n", s).ok());  // K first
  EXPECT_FALSE(SolutionFromString("K 0\n", s).ok());
  EXPECT_FALSE(SolutionFromString("K 2\nREPLICATE NOPE\n", s).ok());
  EXPECT_FALSE(SolutionFromString("K 2\nPATH TRADE 1 TRADE\n", s).ok());
  EXPECT_FALSE(
      SolutionFromString("K 2\nPATH TRADE 0 TRADE.T_ID frobnicate\n", s).ok());
  EXPECT_FALSE(
      SolutionFromString("K 2\nPATH TRADE 0 TRADE.T_ID range 5 1\n", s).ok());
  EXPECT_FALSE(
      SolutionFromString("K 2\nPATH TRADE 0 TRADE.T_ID lookup 2 i:1 0\n", s).ok());
  // Lookup partition id out of range.
  EXPECT_FALSE(
      SolutionFromString("K 2\nPATH TRADE 0 TRADE.T_ID lookup 1 i:1 7\n", s).ok());
  // Hop whose foreign key does not exist.
  EXPECT_FALSE(SolutionFromString(
                   "K 2\nPATH TRADE 1 TRADE T_QTY CUSTOMER_ACCOUNT.CA_ID hash\n", s)
                   .ok());
}

TEST_F(SolutionIoTest, UnlistedTablesDefaultToReplication) {
  auto loaded = SolutionFromString("K 2\nPATH TRADE 0 TRADE.T_ID hash\n", schema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().PartitionOf(*fixture_.db, fixture_.customers[0]),
            kReplicated);
  EXPECT_GE(loaded.value().PartitionOf(*fixture_.db, fixture_.trades[0]), 0);
}

}  // namespace
}  // namespace jecb
