#include <gtest/gtest.h>

#include <cstdio>

#include "test_util.h"
#include "trace/trace_io.h"

namespace jecb {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  TraceIoTest() : fixture_(testing::MakeCustInfoDb()) {}
  testing::CustInfoDb fixture_;
};

TEST_F(TraceIoTest, RoundTripPreservesEverything) {
  Trace original = testing::MakeCustInfoTrace(fixture_, 3);
  // Mix in writes and a second class.
  uint32_t cls = original.InternClass("Writer");
  Transaction txn;
  txn.class_id = cls;
  txn.Write(fixture_.trades[2]);
  txn.Read(fixture_.holding_summaries[0]);  // composite + string key
  original.Add(std::move(txn));

  std::string text = TraceToString(*fixture_.db, original);
  auto loaded = TraceFromString(text, *fixture_.db);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Trace& got = loaded.value();
  ASSERT_EQ(got.size(), original.size());
  for (size_t i = 0; i < got.size(); ++i) {
    const Transaction& a = original.transactions()[i];
    const Transaction& b = got.transactions()[i];
    EXPECT_EQ(original.class_name(a.class_id), got.class_name(b.class_id));
    ASSERT_EQ(a.accesses.size(), b.accesses.size()) << "txn " << i;
    for (size_t j = 0; j < a.accesses.size(); ++j) {
      EXPECT_EQ(a.accesses[j].tuple, b.accesses[j].tuple);
      EXPECT_EQ(a.accesses[j].write, b.accesses[j].write);
    }
  }
}

TEST_F(TraceIoTest, FormatMatchesPaperCollector) {
  Trace trace;
  uint32_t cls = trace.InternClass("CustInfo");
  Transaction txn;
  txn.class_id = cls;
  txn.Read(fixture_.trades[0]);               // T_ID = 1
  txn.Write(fixture_.holding_summaries[5]);   // (BLS, 8)
  trace.Add(std::move(txn));
  std::string text = TraceToString(*fixture_.db, trace);
  EXPECT_NE(text.find("T CustInfo"), std::string::npos);
  EXPECT_NE(text.find("R TRADE i:1"), std::string::npos);
  EXPECT_NE(text.find("W HOLDING_SUMMARY s:BLS i:8"), std::string::npos);
}

TEST_F(TraceIoTest, FileRoundTrip) {
  Trace original = testing::MakeCustInfoTrace(fixture_, 2);
  std::string path = ::testing::TempDir() + "/jecb_trace_io_test.trace";
  ASSERT_TRUE(SaveTrace(path, *fixture_.db, original).ok());
  auto loaded = LoadTrace(path, *fixture_.db);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), original.size());
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, StringsWithSpacesSurvive) {
  TupleId spaced = fixture_.db->MustInsert(
      "HOLDING_SUMMARY", {std::string("TWO WORDS"), int64_t(1), int64_t(1)});
  Trace trace;
  uint32_t cls = trace.InternClass("C");
  Transaction txn;
  txn.class_id = cls;
  txn.Read(spaced);
  trace.Add(std::move(txn));
  auto loaded = TraceFromString(TraceToString(*fixture_.db, trace), *fixture_.db);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().transactions()[0].accesses[0].tuple, spaced);
}

TEST_F(TraceIoTest, MalformedInputsRejected) {
  const Database& db = *fixture_.db;
  // Access before any transaction.
  EXPECT_FALSE(TraceFromString("R TRADE i:1\n", db).ok());
  // Unknown record type.
  EXPECT_FALSE(TraceFromString("T C\nX TRADE i:1\n", db).ok());
  // Unknown table.
  EXPECT_FALSE(TraceFromString("T C\nR NOPE i:1\n", db).ok());
  // Key arity mismatch.
  EXPECT_FALSE(TraceFromString("T C\nR HOLDING_SUMMARY i:1\n", db).ok());
  // Bad value syntax.
  EXPECT_FALSE(TraceFromString("T C\nR TRADE 1\n", db).ok());
  EXPECT_FALSE(TraceFromString("T C\nR TRADE i:abc\n", db).ok());
  // Missing tuple.
  auto missing = TraceFromString("T C\nR TRADE i:999\n", db);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // Missing class name on T.
  EXPECT_FALSE(TraceFromString("T\nR TRADE i:1\n", db).ok());
}

TEST_F(TraceIoTest, CommentsAndBlankLinesIgnored) {
  auto loaded = TraceFromString(
      "# header\n\nT C\n# mid comment\nR TRADE i:1\n\n", *fixture_.db);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value().transactions()[0].accesses.size(), 1u);
}

TEST_F(TraceIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadTrace("/nonexistent/path.trace", *fixture_.db).ok());
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty;
  auto loaded = TraceFromString(TraceToString(*fixture_.db, empty), *fixture_.db);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

}  // namespace
}  // namespace jecb
