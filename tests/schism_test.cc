#include <gtest/gtest.h>

#include "partition/evaluator.h"
#include "schism/schism.h"
#include "test_util.h"

namespace jecb {
namespace {

/// A trace over the CustInfo fixture where each customer's tuples are
/// co-accessed and written (so nothing is classified read-only).
Trace WriteHeavyCustTrace(const testing::CustInfoDb& fixture, int reps) {
  Trace trace = testing::MakeCustInfoTrace(fixture, reps);
  for (auto& txn : trace.mutable_transactions()) {
    for (auto& a : txn.accesses) a.write = true;
  }
  return trace;
}

TEST(SchismTest, RecoversCustomerClusters) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace = WriteHeavyCustTrace(fixture, 20);
  SchismOptions opt;
  opt.num_partitions = 2;
  auto res = Schism(opt).Partition(fixture.db.get(), trace);
  ASSERT_TRUE(res.ok());
  const SchismResult& r = res.value();
  // All tuples of one customer co-accessed every time: zero cut achievable.
  EXPECT_EQ(r.edge_cut, 0u);
  EXPECT_GT(r.graph_nodes, 10u);
  EvalResult ev = Evaluate(*fixture.db, r.solution, trace);
  EXPECT_DOUBLE_EQ(ev.cost(), 0.0);
}

TEST(SchismTest, ExplanationAccuracyReported) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace = WriteHeavyCustTrace(fixture, 20);
  SchismOptions opt;
  opt.num_partitions = 2;
  auto res = Schism(opt).Partition(fixture.db.get(), trace);
  ASSERT_TRUE(res.ok());
  EXPECT_GE(res.value().explanation_accuracy, 0.9);
  EXPECT_LE(res.value().explanation_accuracy, 1.0);
}

TEST(SchismTest, UnseenTablesAreReplicated) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  // Only TRADE is ever accessed (written).
  Trace trace;
  uint32_t cls = trace.InternClass("T");
  for (int i = 0; i < 50; ++i) {
    Transaction txn;
    txn.class_id = cls;
    txn.Write(fixture.trades[i % fixture.trades.size()]);
    trace.Add(std::move(txn));
  }
  SchismOptions opt;
  opt.num_partitions = 2;
  auto res = Schism(opt).Partition(fixture.db.get(), trace);
  ASSERT_TRUE(res.ok());
  const Schema& s = fixture.db->schema();
  // HOLDING_SUMMARY: partitioned class but no evidence -> replicated.
  // (It is read-only here anyway; check the TRADE partitioner exists.)
  const TablePartitioner* trade = res.value().solution.Get(s.FindTable("TRADE").value());
  ASSERT_NE(trade, nullptr);
  EXPECT_EQ(dynamic_cast<const ReplicatedTable*>(trade), nullptr);
}

TEST(SchismTest, ClassifierGeneralizesToUnseenTuples) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace = WriteHeavyCustTrace(fixture, 20);
  SchismOptions opt;
  opt.num_partitions = 2;
  auto res = Schism(opt).Partition(fixture.db.get(), trace);
  ASSERT_TRUE(res.ok());
  // Insert a new trade for account 1 (customer 1) after training: the
  // TRADE classifier sees features (T_ID=99, T_CA_ID=1, ...).
  TupleId unseen = fixture.db->MustInsert("TRADE", {int64_t(99), int64_t(1), int64_t(5)});
  int32_t p_unseen = res.value().solution.PartitionOf(*fixture.db, unseen);
  int32_t p_seen = res.value().solution.PartitionOf(*fixture.db, fixture.trades[0]);
  // Both belong to customer 1's cluster; a CA-split tree places them equal.
  EXPECT_EQ(p_unseen, p_seen);
}

TEST(SchismTest, LargeTransactionsUseBoundedEdges) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace;
  uint32_t cls = trace.InternClass("Huge");
  Transaction txn;
  txn.class_id = cls;
  for (TupleId t : fixture.trades) txn.Write(t);
  for (TupleId a : fixture.accounts) txn.Write(a);
  for (TupleId h : fixture.holding_summaries) txn.Write(h);
  trace.Add(std::move(txn));
  SchismOptions opt;
  opt.num_partitions = 2;
  opt.max_pairs_per_txn = 25;  // force the ring + chords path (20 tuples)
  auto res = Schism(opt).Partition(fixture.db.get(), trace);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res.value().graph_edges, 25u + 20u);
  EXPECT_EQ(res.value().graph_nodes, 20u);
}

TEST(SchismTest, EmptyTraceYieldsAllReplicated) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace;
  SchismOptions opt;
  opt.num_partitions = 4;
  auto res = Schism(opt).Partition(fixture.db.get(), trace);
  ASSERT_TRUE(res.ok());
  for (size_t t = 0; t < fixture.db->schema().num_tables(); ++t) {
    TupleId any{static_cast<TableId>(t), 0};
    EXPECT_EQ(res.value().solution.PartitionOf(*fixture.db, any), kReplicated);
  }
}

TEST(SchismTest, TupleFeaturesCoverAllColumnTypes) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  // HOLDING_SUMMARY has a string column (HS_S_SYMB).
  auto features = TupleFeatures(*fixture.db, fixture.holding_summaries[0]);
  EXPECT_EQ(features.size(), 3u);
  auto again = TupleFeatures(*fixture.db, fixture.holding_summaries[0]);
  EXPECT_EQ(features, again);  // deterministic, including hashed strings
}

}  // namespace
}  // namespace jecb
