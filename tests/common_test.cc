#include <gtest/gtest.h>

#include <set>

#include "common/ascii_table.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace jecb {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "thing");
  EXPECT_EQ(s.ToString(), "NotFound: thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kParseError, StatusCode::kOutOfRange,
        StatusCode::kUnsupported, StatusCode::kInternal}) {
    EXPECT_NE(StatusCodeToString(c), "Unknown");
  }
}

Status FailsThrough() {
  JECB_RETURN_NOT_OK(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Result --

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  JECB_ASSIGN_OR_RETURN(int h, Half(x));
  JECB_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnChains) {
  ASSERT_TRUE(Quarter(8).ok());
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(3).ok());
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Uniform(0, 1 << 30), b.Uniform(0, 1 << 30));
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Uniform(0, 1 << 30) == b.Uniform(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NuRandStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NuRand(255, 0, 999);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 999);
  }
}

TEST(RngTest, ZipfSkewsTowardsSmallValues) {
  Rng rng(5);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 1.2) < 10) ++head;
  }
  // With theta=1.2 the first 10 of 100 values take well over half the mass.
  EXPECT_GT(head, n / 2);
}

TEST(RngTest, ZipfZeroThetaIsUniformish) {
  Rng rng(5);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 0.0) < 10) ++head;
  }
  EXPECT_NEAR(head, n / 10, n / 40);
}

TEST(RngTest, SampleDistinctIsDistinctAndInRange) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleDistinct(10, 29, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<int64_t> seen(sample.begin(), sample.end());
    EXPECT_EQ(seen.size(), 8u) << "duplicates in sample";
    for (int64_t v : sample) {
      EXPECT_GE(v, 10);
      EXPECT_LE(v, 29);
    }
  }
}

TEST(RngTest, SampleDistinctFullRange) {
  Rng rng(3);
  auto sample = rng.SampleDistinct(0, 4, 5);
  std::set<int64_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen, (std::set<int64_t>{0, 1, 2, 3, 4}));
}

// ------------------------------------------------------------------ Hash --

TEST(HashTest, StableAcrossCalls) {
  EXPECT_EQ(HashString("warehouse"), HashString("warehouse"));
  EXPECT_NE(HashString("warehouse"), HashString("warehousf"));
  EXPECT_EQ(HashInt64(42), HashInt64(42));
  EXPECT_NE(HashInt64(42), HashInt64(43));
}

TEST(HashTest, CombineOrderMatters) {
  EXPECT_NE(HashCombine(HashInt64(1), HashInt64(2)),
            HashCombine(HashInt64(2), HashInt64(1)));
}

TEST(HashTest, IntHashSpreadsLowBits) {
  // Consecutive keys should land in different mod-8 buckets reasonably often.
  std::set<uint64_t> buckets;
  for (int i = 0; i < 16; ++i) buckets.insert(HashInt64(i) % 8);
  EXPECT_GE(buckets.size(), 6u);
}

// ---------------------------------------------------------------- String --

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  x y\t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringUtilTest, JoinAndStartsWith) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

// ------------------------------------------------------------ AsciiTable --

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable t({"name", "v"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22 |"), std::string::npos);
}

TEST(AsciiTableTest, PadsShortRows) {
  AsciiTable t({"a", "b"});
  t.AddRow({"only"});
  EXPECT_NE(t.ToString().find("| only |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace jecb
