#include <gtest/gtest.h>

#include <random>

#include "ml/decision_tree.h"

namespace jecb {
namespace {

TEST(DecisionTreeTest, EmptyInputPredictsZero) {
  DecisionTree t = DecisionTree::Train({}, {}, 4);
  EXPECT_EQ(t.Predict({1, 2, 3}), 0);
  EXPECT_EQ(t.num_nodes(), 1u);
}

TEST(DecisionTreeTest, PureInputIsSingleLeaf) {
  std::vector<std::vector<int64_t>> x = {{1}, {2}, {3}};
  std::vector<int32_t> y = {2, 2, 2};
  DecisionTree t = DecisionTree::Train(x, y, 4);
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_EQ(t.Predict({99}), 2);
}

TEST(DecisionTreeTest, LearnsThresholdSplit) {
  std::vector<std::vector<int64_t>> x;
  std::vector<int32_t> y;
  for (int64_t v = 0; v < 100; ++v) {
    x.push_back({v});
    y.push_back(v < 50 ? 0 : 1);
  }
  DecisionTree t = DecisionTree::Train(x, y, 2);
  EXPECT_EQ(t.Predict({10}), 0);
  EXPECT_EQ(t.Predict({90}), 1);
  EXPECT_EQ(t.Predict({49}), 0);
  EXPECT_EQ(t.Predict({50}), 1);
  EXPECT_LE(t.depth(), 3);
}

TEST(DecisionTreeTest, PicksInformativeFeature) {
  // Feature 0 is noise; feature 1 determines the label.
  std::mt19937_64 rng(3);
  std::vector<std::vector<int64_t>> x;
  std::vector<int32_t> y;
  for (int i = 0; i < 400; ++i) {
    int64_t informative = static_cast<int64_t>(rng() % 8);
    x.push_back({static_cast<int64_t>(rng() % 1000), informative});
    y.push_back(static_cast<int32_t>(informative % 4));
  }
  DecisionTree t = DecisionTree::Train(x, y, 4);
  int correct = 0;
  for (int64_t v = 0; v < 8; ++v) {
    if (t.Predict({static_cast<int64_t>(rng() % 1000), v}) == v % 4) ++correct;
  }
  EXPECT_EQ(correct, 8);
}

TEST(DecisionTreeTest, PerRowLeavesFitTinyHotTables) {
  // The TPC-C WAREHOUSE case: 8 rows, 8 distinct labels.
  std::vector<std::vector<int64_t>> x;
  std::vector<int32_t> y;
  for (int64_t w = 0; w < 8; ++w) {
    x.push_back({w, 42});
    y.push_back(static_cast<int32_t>(7 - w));
  }
  DecisionTree t = DecisionTree::Train(x, y, 8);
  for (int64_t w = 0; w < 8; ++w) {
    EXPECT_EQ(t.Predict({w, 42}), 7 - w);
  }
}

TEST(DecisionTreeTest, MaxDepthCapsTree) {
  std::vector<std::vector<int64_t>> x;
  std::vector<int32_t> y;
  std::mt19937_64 rng(5);
  for (int i = 0; i < 512; ++i) {
    x.push_back({static_cast<int64_t>(i)});
    y.push_back(static_cast<int32_t>(rng() % 2));  // unlearnable noise
  }
  DecisionTreeOptions opt;
  opt.max_depth = 3;
  DecisionTree t = DecisionTree::Train(x, y, 2, opt);
  EXPECT_LE(t.depth(), 4);
}

TEST(DecisionTreeTest, MulticlassRanges) {
  std::vector<std::vector<int64_t>> x;
  std::vector<int32_t> y;
  for (int64_t v = 0; v < 800; ++v) {
    x.push_back({v});
    y.push_back(static_cast<int32_t>(v / 100));
  }
  DecisionTree t = DecisionTree::Train(x, y, 8);
  int correct = 0;
  for (int64_t v = 0; v < 800; v += 13) {
    if (t.Predict({v}) == static_cast<int32_t>(v / 100)) ++correct;
  }
  EXPECT_GE(correct, 60);  // ~62 probes, near-perfect
}

TEST(DecisionTreeTest, ScatteredLabelsDoNotGeneralize) {
  // Schism's TATP failure mode: labels are arbitrary per id. The tree can
  // memorize training ids but must misclassify most unseen ids.
  std::mt19937_64 rng(11);
  std::vector<std::vector<int64_t>> x;
  std::vector<int32_t> y;
  std::vector<int32_t> truth(4000);
  for (auto& t : truth) t = static_cast<int32_t>(rng() % 8);
  for (int64_t id = 0; id < 4000; id += 2) {  // train on even ids only
    x.push_back({id});
    y.push_back(truth[id]);
  }
  DecisionTreeOptions opt;
  opt.max_depth = 24;
  DecisionTree t = DecisionTree::Train(x, y, 8, opt);
  int test_correct = 0;
  for (int64_t id = 1; id < 4000; id += 2) {
    if (t.Predict({id}) == truth[id]) ++test_correct;
  }
  // Unseen arbitrary labels: near chance level (1/8), far below memorized.
  EXPECT_LT(test_correct, 900);
}

TEST(DecisionTreeTest, ShortFeatureVectorFallsBackToNodeLabel) {
  std::vector<std::vector<int64_t>> x = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  std::vector<int32_t> y = {0, 0, 1, 1};
  DecisionTree t = DecisionTree::Train(x, y, 2);
  // Predicting with fewer features than trained must not crash.
  int32_t p = t.Predict({});
  EXPECT_TRUE(p == 0 || p == 1);
}

TEST(DecisionTreeTest, ToStringRendersRules) {
  std::vector<std::vector<int64_t>> x = {{0}, {1}, {2}, {3}};
  std::vector<int32_t> y = {0, 0, 1, 1};
  DecisionTree t = DecisionTree::Train(x, y, 2);
  std::string s = t.ToString({"W_ID"});
  EXPECT_NE(s.find("W_ID <= 1"), std::string::npos);
  EXPECT_NE(s.find("partition"), std::string::npos);
}

}  // namespace
}  // namespace jecb
