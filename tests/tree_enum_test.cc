#include <gtest/gtest.h>

#include "jecb/join_graph.h"
#include "jecb/tree_enum.h"
#include "sql/analyzer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace jecb {
namespace {

/// Fixture around the CustInfo example: schema stamped so that CUSTOMER is
/// replicated (read-only) and the other three tables are partitioned, as in
/// the paper's discussion of Example 5.
class TreeEnumTest : public ::testing::Test {
 protected:
  TreeEnumTest() : fixture_(testing::MakeCustInfoDb()) {
    Schema& s = fixture_.db->mutable_schema();
    s.mutable_table(s.FindTable("CUSTOMER").value()).access_class =
        AccessClass::kReadOnly;
    lattice_ = std::make_unique<AttributeLattice>(&fixture_.db->schema());
    auto proc = sql::ParseProcedure(testing::CustInfoSql());
    CheckOk(proc.status(), "TreeEnumTest");
    auto info = sql::AnalyzeProcedure(fixture_.db->schema(), proc.value());
    CheckOk(info.status(), "TreeEnumTest");
    info_ = std::move(info).value();
    graph_ = BuildJoinGraph(fixture_.db->schema(), info_);
  }

  const Schema& schema() const { return fixture_.db->schema(); }
  ColumnRef Ref(const char* q) const { return schema().ResolveQualified(q).value(); }
  TableId Tid(const char* name) const { return schema().FindTable(name).value(); }

  testing::CustInfoDb fixture_;
  std::unique_ptr<AttributeLattice> lattice_;
  sql::ProcedureInfo info_;
  JoinGraph graph_;
};

TEST_F(TreeEnumTest, JoinGraphActivatesExplicitJoins) {
  // CustInfo joins TRADE and HOLDING_SUMMARY to CUSTOMER_ACCOUNT.
  EXPECT_EQ(graph_.tables.size(), 3u);
  EXPECT_EQ(graph_.partitioned_tables.size(), 3u);
  ASSERT_EQ(graph_.active_fks.size(), 2u);
  for (FkIdx f : graph_.active_fks) {
    EXPECT_EQ(schema().foreign_keys()[f].ref_table, Tid("CUSTOMER_ACCOUNT"));
  }
}

TEST_F(TreeEnumTest, ReachabilityFollowsActiveFks) {
  auto from_trade = ReachableTables(schema(), graph_, Tid("TRADE"));
  EXPECT_TRUE(from_trade.count(Tid("CUSTOMER_ACCOUNT")));
  EXPECT_FALSE(from_trade.count(Tid("HOLDING_SUMMARY")));
  auto from_ca = ReachableTables(schema(), graph_, Tid("CUSTOMER_ACCOUNT"));
  EXPECT_EQ(from_ca.size(), 1u);  // CUSTOMER fk not active (table not accessed)
}

TEST_F(TreeEnumTest, RootAttributesAreOnCommonTable) {
  auto roots = FindRootAttributes(schema(), graph_, *lattice_);
  // All partitioned tables reach only CUSTOMER_ACCOUNT; candidates there are
  // CA_ID and CA_C_ID (plus their equivalents deduplicated).
  std::set<ColumnRef> got(roots.begin(), roots.end());
  EXPECT_TRUE(got.count(Ref("CUSTOMER_ACCOUNT.CA_ID")) ||
              got.count(Ref("TRADE.T_CA_ID")) ||
              got.count(Ref("HOLDING_SUMMARY.HS_CA_ID")))
      << "the CA_ID granularity must be a root";
  EXPECT_TRUE(got.count(Ref("CUSTOMER_ACCOUNT.CA_C_ID")));
  EXPECT_EQ(roots.size(), 2u);
}

TEST_F(TreeEnumTest, EnumerateFkPaths) {
  auto paths =
      EnumerateFkPaths(schema(), graph_, Tid("TRADE"), Tid("CUSTOMER_ACCOUNT"), 8);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 1u);
  // Self-paths are the empty hop list.
  auto self = EnumerateFkPaths(schema(), graph_, Tid("TRADE"), Tid("TRADE"), 8);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_TRUE(self[0].empty());
  // Unreachable pairs yield nothing.
  EXPECT_TRUE(
      EnumerateFkPaths(schema(), graph_, Tid("CUSTOMER_ACCOUNT"), Tid("TRADE"), 8)
          .empty());
}

TEST_F(TreeEnumTest, EnumerateTreesBuildsFigureTwoTree) {
  auto trees = EnumerateTrees(schema(), graph_, *lattice_,
                              Ref("CUSTOMER_ACCOUNT.CA_C_ID"),
                              graph_.partitioned_tables);
  ASSERT_GE(trees.size(), 1u);
  const JoinTree& tree = trees[0];
  EXPECT_EQ(tree.paths.size(), 3u);
  // Every path must evaluate to the owning customer: Figure 2's tree.
  const JoinPath& trade_path = tree.paths.at(Tid("TRADE"));
  EXPECT_EQ(trade_path.Evaluate(*fixture_.db, fixture_.trades[0]).value().AsInt(), 1);
  EXPECT_EQ(trade_path.Evaluate(*fixture_.db, fixture_.trades[1]).value().AsInt(), 2);
  const JoinPath& ca_path = tree.paths.at(Tid("CUSTOMER_ACCOUNT"));
  EXPECT_EQ(ca_path.length(), 0u);
}

TEST_F(TreeEnumTest, EnumerateTreesFailsForUnreachableCover) {
  // HOLDING_SUMMARY cannot reach TRADE, so a tree rooted at T_ID over all
  // three tables does not exist.
  auto trees = EnumerateTrees(schema(), graph_, *lattice_, Ref("TRADE.T_ID"),
                              graph_.partitioned_tables);
  EXPECT_TRUE(trees.empty());
}

TEST_F(TreeEnumTest, SplitGraphOnDisconnectedComponents) {
  // Deactivate the TRADE join: TRADE becomes its own component.
  JoinGraph g = graph_;
  std::vector<FkIdx> kept;
  for (FkIdx f : g.active_fks) {
    if (schema().foreign_keys()[f].table != Tid("TRADE")) kept.push_back(f);
  }
  g.active_fks = kept;
  auto parts = SplitGraph(schema(), g);
  ASSERT_EQ(parts.size(), 2u);
}

TEST_F(TreeEnumTest, SplitGraphReturnsSelfWhenConnected) {
  auto parts = SplitGraph(schema(), graph_);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].tables, graph_.tables);
}

// The m-to-n split of Example 6: a table with FK edges into two partitioned
// regions.
TEST(SplitGraphTest, MToNSplit) {
  Schema s;
  auto add = [&](const char* name, std::initializer_list<const char*> cols,
                 std::vector<std::string> pk) {
    TableId t = s.AddTable(name).value();
    for (const char* c : cols) CheckOk(s.AddColumn(t, c, ValueType::kInt64), "m2n");
    CheckOk(s.SetPrimaryKey(t, pk), "m2n");
    return t;
  };
  add("LEFT_P", {"L_ID"}, {"L_ID"});
  add("RIGHT_P", {"R_ID"}, {"R_ID"});
  TableId mid = add("MID", {"M_ID", "M_L", "M_R"}, {"M_ID"});
  CheckOk(s.AddForeignKey("MID", {"M_L"}, "LEFT_P", {"L_ID"}), "m2n");
  CheckOk(s.AddForeignKey("MID", {"M_R"}, "RIGHT_P", {"R_ID"}), "m2n");

  JoinGraph g;
  g.tables = {0, 1, 2};
  g.partitioned_tables = {0, 1, 2};
  g.active_fks = {0, 1};
  g.candidate_attrs = {ColumnRef{0, 0}, ColumnRef{1, 0}, ColumnRef{mid, 0}};

  AttributeLattice lattice(&s);
  // No root: LEFT_P cannot reach RIGHT_P.
  EXPECT_TRUE(FindRootAttributes(s, g, lattice).empty());

  auto parts = SplitGraph(s, g);
  ASSERT_EQ(parts.size(), 2u);
  // Each part contains MID plus one side.
  for (const auto& part : parts) {
    EXPECT_TRUE(part.tables.count(mid));
    EXPECT_EQ(part.tables.size(), 2u);
  }
}

}  // namespace
}  // namespace jecb
