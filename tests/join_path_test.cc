#include <gtest/gtest.h>

#include "partition/join_path.h"
#include "test_util.h"

namespace jecb {
namespace {

class JoinPathTest : public ::testing::Test {
 protected:
  JoinPathTest() : fixture_(testing::MakeCustInfoDb()) {
    const Schema& s = schema();
    trade_ = s.FindTable("TRADE").value();
    hs_ = s.FindTable("HOLDING_SUMMARY").value();
    ca_ = s.FindTable("CUSTOMER_ACCOUNT").value();
    cust_ = s.FindTable("CUSTOMER").value();
    for (FkIdx f = 0; f < s.foreign_keys().size(); ++f) {
      const ForeignKey& fk = s.foreign_keys()[f];
      if (fk.table == trade_) fk_trade_ca_ = f;
      if (fk.table == hs_) fk_hs_ca_ = f;
      if (fk.table == ca_) fk_ca_cust_ = f;
    }
  }

  const Schema& schema() const { return fixture_.db->schema(); }
  Database& db() { return *fixture_.db; }

  /// Example 2's join path {T_ID, T_CA_ID, CA_ID, CA_C_ID}.
  JoinPath TradeToCaCid() const {
    JoinPath p;
    p.source_table = trade_;
    p.hops = {fk_trade_ca_};
    p.dest = schema().ResolveQualified("CUSTOMER_ACCOUNT.CA_C_ID").value();
    return p;
  }

  testing::CustInfoDb fixture_;
  TableId trade_, hs_, ca_, cust_;
  FkIdx fk_trade_ca_ = 0, fk_hs_ca_ = 0, fk_ca_cust_ = 0;
};

TEST_F(JoinPathTest, ValidatesCorrectPath) {
  EXPECT_TRUE(TradeToCaCid().Validate(schema()).ok());
}

TEST_F(JoinPathTest, RejectsBrokenChains) {
  JoinPath p = TradeToCaCid();
  p.source_table = hs_;  // hop starts at TRADE, not HOLDING_SUMMARY
  EXPECT_FALSE(p.Validate(schema()).ok());

  JoinPath q = TradeToCaCid();
  q.dest = schema().ResolveQualified("TRADE.T_QTY").value();  // dest not in CA
  EXPECT_FALSE(q.Validate(schema()).ok());

  JoinPath r = TradeToCaCid();
  r.hops = {static_cast<FkIdx>(99)};
  EXPECT_FALSE(r.Validate(schema()).ok());
}

TEST_F(JoinPathTest, EvaluatesFigureOneMapping) {
  // Figure 1: trades of accounts {1, 8} belong to customer 1; {7, 10} to 2.
  JoinPath p = TradeToCaCid();
  const int expected_customer[8] = {1, 2, 2, 1, 1, 2, 1, 2};  // by T_ID 1..8
  for (int i = 0; i < 8; ++i) {
    auto v = p.Evaluate(db(), fixture_.trades[i]);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value().AsInt(), expected_customer[i]) << "trade " << (i + 1);
  }
}

TEST_F(JoinPathTest, EvaluatesZeroHopPath) {
  JoinPath p;
  p.source_table = trade_;
  p.dest = schema().ResolveQualified("TRADE.T_CA_ID").value();
  ASSERT_TRUE(p.Validate(schema()).ok());
  EXPECT_EQ(p.Evaluate(db(), fixture_.trades[0]).value().AsInt(), 1);
}

TEST_F(JoinPathTest, EvaluatesTwoHopPath) {
  JoinPath p;
  p.source_table = hs_;
  p.hops = {fk_hs_ca_, fk_ca_cust_};
  p.dest = schema().ResolveQualified("CUSTOMER.C_TAX_ID").value();
  ASSERT_TRUE(p.Validate(schema()).ok());
  // HS row 0 is (ADLAE, 1): account 1 -> customer 1 -> tax id 901.
  EXPECT_EQ(p.Evaluate(db(), fixture_.holding_summaries[0]).value().AsInt(), 901);
}

TEST_F(JoinPathTest, EvaluateWrongSourceFails) {
  EXPECT_FALSE(TradeToCaCid().Evaluate(db(), fixture_.customers[0]).ok());
}

TEST_F(JoinPathTest, EvaluateDanglingFkFails) {
  TupleId dangling =
      db().Insert(trade_, {Value(50), Value(404), Value(1)}).value();
  EXPECT_FALSE(TradeToCaCid().Evaluate(db(), dangling).ok());
}

TEST_F(JoinPathTest, HopsArePrefixOf) {
  JoinPath shorter;
  shorter.source_table = trade_;
  shorter.hops = {fk_trade_ca_};
  shorter.dest = schema().ResolveQualified("CUSTOMER_ACCOUNT.CA_ID").value();

  JoinPath longer = shorter;
  longer.hops.push_back(fk_ca_cust_);
  longer.dest = schema().ResolveQualified("CUSTOMER.C_ID").value();

  EXPECT_TRUE(shorter.HopsArePrefixOf(longer));
  EXPECT_FALSE(longer.HopsArePrefixOf(shorter));
  EXPECT_TRUE(shorter.HopsArePrefixOf(shorter));

  JoinPath other;
  other.source_table = hs_;
  other.hops = {fk_hs_ca_};
  other.dest = schema().ResolveQualified("CUSTOMER_ACCOUNT.CA_ID").value();
  EXPECT_FALSE(other.HopsArePrefixOf(longer));  // different source
}

TEST_F(JoinPathTest, ConcatPaths) {
  JoinPath base;
  base.source_table = trade_;
  base.hops = {fk_trade_ca_};
  base.dest = schema().ResolveQualified("CUSTOMER_ACCOUNT.CA_ID").value();

  JoinPath ext;
  ext.source_table = ca_;
  ext.hops = {fk_ca_cust_};
  ext.dest = schema().ResolveQualified("CUSTOMER.C_ID").value();

  auto combined = ConcatPaths(schema(), base, ext);
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(combined.value().hops.size(), 2u);
  EXPECT_EQ(combined.value().Evaluate(db(), fixture_.trades[1]).value().AsInt(), 2);

  // Extension must start at the base's destination table.
  JoinPath bad_ext;
  bad_ext.source_table = trade_;
  bad_ext.hops = {fk_trade_ca_};
  bad_ext.dest = base.dest;
  EXPECT_FALSE(ConcatPaths(schema(), base, bad_ext).ok());
}

TEST_F(JoinPathTest, ToStringMentionsTables) {
  std::string s = TradeToCaCid().ToString(schema());
  EXPECT_NE(s.find("TRADE"), std::string::npos);
  EXPECT_NE(s.find("CUSTOMER_ACCOUNT"), std::string::npos);
  EXPECT_NE(s.find("CA_C_ID"), std::string::npos);
}

}  // namespace
}  // namespace jecb
