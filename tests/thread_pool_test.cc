#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace jecb {
namespace {

TEST(ThreadPoolTest, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1);
  EXPECT_GE(ThreadPool::ResolveThreads(-3), 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7);
}

TEST(ThreadPoolTest, SubmittedTasksRunAndFuturesResolve) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool joins after finishing every task
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForWithNullPoolRunsInlineInOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ParallelForSingleWorkerRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  ParallelFor(&pool, 5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ParallelForZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace jecb
