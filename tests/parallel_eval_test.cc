// Determinism contract of the parallel pipeline: Evaluate(), Jecb::Partition,
// and Horticulture::Partition must produce bit-identical results at every
// thread count (merge by chunk index, reduce in enumeration order — never by
// completion order).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "horticulture/horticulture.h"
#include "jecb/jecb.h"
#include "partition/evaluator.h"
#include "workloads/tpcc.h"

namespace jecb {
namespace {

void ExpectEvalEqual(const EvalResult& a, const EvalResult& b) {
  EXPECT_EQ(a.total_txns, b.total_txns);
  EXPECT_EQ(a.distributed_txns, b.distributed_txns);
  EXPECT_EQ(a.partitions_touched, b.partitions_touched);
  EXPECT_EQ(a.class_total, b.class_total);
  EXPECT_EQ(a.class_distributed, b.class_distributed);
  EXPECT_EQ(a.partition_load, b.partition_load);
}

TEST(ParallelEvaluateTest, FiftyThousandTxnTpccTraceMatchesSerial) {
  TpccConfig cfg;
  cfg.warehouses = 8;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 40;
  cfg.initial_orders_per_district = 2;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(50000, 11);
  ASSERT_EQ(bundle.trace.size(), 50000u);

  // Naive hash exercises CallbackPartitioner's shared concurrent memo; the
  // trace is large enough that every chunk boundary case appears.
  DatabaseSolution solution = MakeNaiveHashSolution(*bundle.db, 8);
  EvalResult serial = Evaluate(*bundle.db, solution, bundle.trace);
  EXPECT_GT(serial.distributed_txns, 0u);
  for (int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    EvalResult parallel = Evaluate(*bundle.db, solution, bundle.trace, &pool);
    ExpectEvalEqual(parallel, serial);
  }
}

TEST(ParallelPipelineTest, JecbPartitionIsDeterministicAcrossThreadCounts) {
  TpccConfig cfg;
  cfg.warehouses = 4;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 30;
  cfg.initial_orders_per_district = 2;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(6000, 7);

  struct Run {
    std::string tables;
    std::string chosen_attr;
    uint64_t evaluated = 0;
    double best_train_cost = 0.0;
    EvalResult eval;
    std::vector<size_t> class_shapes;
  };
  auto run_with = [&](int32_t threads) {
    JecbOptions opt;
    opt.num_partitions = 8;
    opt.num_threads = threads;
    Result<JecbResult> res =
        Jecb(opt).Partition(bundle.db.get(), bundle.procedures, bundle.trace);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    Run run;
    run.tables = res.value().solution.Describe(bundle.db->schema());
    run.chosen_attr = res.value().combiner_report.chosen_attr;
    run.evaluated = res.value().combiner_report.evaluated_combinations;
    run.best_train_cost = res.value().combiner_report.best_train_cost;
    run.eval = Evaluate(*bundle.db, res.value().solution, bundle.trace);
    for (const auto& cls : res.value().classes) {
      run.class_shapes.push_back(cls.total_solutions.size());
      run.class_shapes.push_back(cls.partial_solutions.size());
    }
    return run;
  };

  Run serial = run_with(1);
  EXPECT_FALSE(serial.chosen_attr.empty());
  for (int32_t threads : {4, 8}) {
    Run parallel = run_with(threads);
    EXPECT_EQ(parallel.tables, serial.tables) << "threads=" << threads;
    EXPECT_EQ(parallel.chosen_attr, serial.chosen_attr) << "threads=" << threads;
    EXPECT_EQ(parallel.evaluated, serial.evaluated) << "threads=" << threads;
    // Bit-identical, not approximately equal: the reduction is ordered.
    EXPECT_EQ(parallel.best_train_cost, serial.best_train_cost)
        << "threads=" << threads;
    EXPECT_EQ(parallel.class_shapes, serial.class_shapes) << "threads=" << threads;
    ExpectEvalEqual(parallel.eval, serial.eval);
  }
}

TEST(ParallelPipelineTest, HorticultureIsDeterministicAcrossThreadCounts) {
  TpccConfig cfg;
  cfg.warehouses = 4;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 30;
  cfg.initial_orders_per_district = 2;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(4000, 7);

  auto run_with = [&](int32_t threads) {
    HorticultureOptions opt;
    opt.num_partitions = 8;
    opt.num_threads = threads;
    opt.rounds = 8;
    opt.sample_txns = 2000;
    Result<HorticultureResult> res =
        Horticulture(opt).Partition(bundle.db.get(), bundle.trace);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res;
  };

  Result<HorticultureResult> serial = run_with(1);
  for (int32_t threads : {4, 8}) {
    Result<HorticultureResult> parallel = run_with(threads);
    EXPECT_EQ(parallel.value().solution.Describe(bundle.db->schema()),
              serial.value().solution.Describe(bundle.db->schema()))
        << "threads=" << threads;
    EXPECT_EQ(parallel.value().train_cost, serial.value().train_cost);
    EXPECT_EQ(parallel.value().model_cost, serial.value().model_cost);
    EXPECT_EQ(parallel.value().evaluations, serial.value().evaluations);
  }
}

}  // namespace
}  // namespace jecb
