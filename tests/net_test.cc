// Tests for the wire layer (src/net): payload struct encode/decode round
// trips, frame encode -> FrameBuffer decode under arbitrary chunking,
// truncated- and corrupted-frame handling (CRC, version, size cap, sticky
// errors), a deterministic mutation fuzz over the frame decoder, and an
// in-thread event-loop echo exercising accept/read/dedup/shutdown over a
// real Unix-domain socket.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "net/wire.h"

namespace jecb::net {
namespace {

Frame MustDecodeOne(const std::string& bytes) {
  FrameBuffer buf;
  buf.Feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(buf.Next(&f), FrameBuffer::NextResult::kFrame);
  return f;
}

TEST(WireTest, Crc32MatchesKnownVector) {
  // The IEEE CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(WireTest, FrameRoundTripPreservesEverything) {
  std::string payload = "hello shard";
  std::string bytes = EncodeFrame(MsgType::kPrepare, 42, payload);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + payload.size());
  Frame f = MustDecodeOne(bytes);
  EXPECT_EQ(f.type, MsgType::kPrepare);
  EXPECT_EQ(f.seq, 42u);
  EXPECT_EQ(f.payload, payload);
}

TEST(WireTest, PayloadStructsRoundTrip) {
  HelloMsg hello;
  hello.client_id = 7;
  hello.shard_id = 3;
  HelloMsg hello2;
  ASSERT_TRUE(hello2.Decode(hello.Encode()));
  EXPECT_EQ(hello2.client_id, 7u);
  EXPECT_EQ(hello2.shard_id, 3);

  HelloAckMsg ack;
  ack.shard_id = 2;
  ack.num_shards = 8;
  HelloAckMsg ack2;
  ASSERT_TRUE(ack2.Decode(ack.Encode()));
  EXPECT_EQ(ack2.shard_id, 2);
  EXPECT_EQ(ack2.num_shards, 8);

  FragmentMsg frag;
  frag.txn_id = 1234567890123ull;
  frag.attempt = 3;
  frag.class_id = 9;
  frag.accesses = {{1, 100, 1}, {2, 200, 0}, {0xFFFFFFFFu, ~0ull, 1}};
  FragmentMsg frag2;
  ASSERT_TRUE(frag2.Decode(frag.Encode()));
  EXPECT_EQ(frag2.txn_id, frag.txn_id);
  EXPECT_EQ(frag2.attempt, 3u);
  EXPECT_EQ(frag2.class_id, 9u);
  ASSERT_EQ(frag2.accesses.size(), 3u);
  EXPECT_EQ(frag2.accesses[2].table, 0xFFFFFFFFu);
  EXPECT_EQ(frag2.accesses[2].row, ~0ull);
  EXPECT_EQ(frag2.accesses[1].write, 0);

  VoteMsg vote;
  vote.txn_id = 5;
  vote.attempt = 1;
  vote.decision = VoteDecision::kReject;
  vote.stalled = 1;
  VoteMsg vote2;
  ASSERT_TRUE(vote2.Decode(vote.Encode()));
  EXPECT_EQ(vote2.decision, VoteDecision::kReject);
  EXPECT_EQ(vote2.stalled, 1);

  ShardStatsMsg stats;
  stats.executed_local = 1;
  stats.prepares_served = 2;
  stats.commits_applied = 3;
  stats.bytes_received = 1 << 20;
  stats.dedup_dropped = 5;
  stats.exchange_reqs_served = 6;
  stats.exchange_tuples_sent = 7;
  stats.exchange_reconnects = 8;
  ShardStatsMsg stats2;
  ASSERT_TRUE(stats2.Decode(stats.Encode()));
  EXPECT_EQ(stats2.prepares_served, 2u);
  EXPECT_EQ(stats2.bytes_received, 1u << 20);
  EXPECT_EQ(stats2.dedup_dropped, 5u);
  EXPECT_EQ(stats2.exchange_reqs_served, 6u);
  EXPECT_EQ(stats2.exchange_tuples_sent, 7u);
  EXPECT_EQ(stats2.exchange_reconnects, 8u);
}

TEST(WireTest, FragmentExchangeTailRoundTripsAndStaysBackCompat) {
  FragmentMsg frag;
  frag.txn_id = 77;
  frag.attempt = 1;
  frag.accesses = {{1, 10, 1}};
  // No exchange reads: the encoding must be byte-identical to the
  // pre-exchange format (older-style frames decode to an empty tail).
  std::string legacy = frag.Encode();
  frag.exchange_reads = {{1, 10, 0}, {2, 20, 0}};
  std::string tailed = frag.Encode();
  EXPECT_GT(tailed.size(), legacy.size());
  EXPECT_EQ(tailed.substr(0, legacy.size()), legacy);

  FragmentMsg out;
  ASSERT_TRUE(out.Decode(legacy));
  EXPECT_TRUE(out.exchange_reads.empty());
  ASSERT_TRUE(out.Decode(tailed));
  ASSERT_EQ(out.exchange_reads.size(), 2u);
  EXPECT_EQ(out.exchange_reads[1].table, 2u);
  EXPECT_EQ(out.exchange_reads[1].row, 20u);
}

TEST(WireTest, ExchangeMsgRoundTripAndRejects) {
  ExchangeMsg req;
  req.txn_id = 991;
  req.attempt = 2;
  req.from_shard = 3;
  req.reads = {{5, 50, 0}, {6, 60, 0}};
  std::string good = req.Encode();
  ExchangeMsg out;
  ASSERT_TRUE(out.Decode(good));
  EXPECT_EQ(out.version, kExchangeVersion);
  EXPECT_EQ(out.txn_id, 991u);
  EXPECT_EQ(out.from_shard, 3);
  ASSERT_EQ(out.reads.size(), 2u);
  EXPECT_EQ(out.reads[1].row, 60u);

  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(out.Decode(good.substr(0, cut))) << "cut=" << cut;
  }
  EXPECT_FALSE(out.Decode(good + "x"));
  std::string bad_version = good;
  bad_version[0] = static_cast<char>(kExchangeVersion + 1);
  EXPECT_FALSE(out.Decode(bad_version));
}

TEST(WireTest, TupleBatchMsgRoundTripAndRejectsLyingCounts) {
  TupleBatchMsg batch;
  batch.txn_id = 4242;
  batch.attempt = 1;
  batch.source_shard = 2;
  batch.batch_index = 3;
  batch.last = 0;
  batch.entries = {{1, 100, std::string("\x00\x01\x02", 3)},
                   {2, 200, ""},
                   {3, 300, std::string(500, 'z')}};
  std::string good = batch.Encode();
  TupleBatchMsg out;
  ASSERT_TRUE(out.Decode(good));
  EXPECT_EQ(out.txn_id, 4242u);
  EXPECT_EQ(out.batch_index, 3u);
  EXPECT_EQ(out.last, 0);
  ASSERT_EQ(out.entries.size(), 3u);
  EXPECT_EQ(out.entries[0].bytes.size(), 3u);
  EXPECT_EQ(out.entries[1].bytes, "");
  EXPECT_EQ(out.entries[2].bytes, std::string(500, 'z'));

  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(out.Decode(good.substr(0, cut))) << "cut=" << cut;
  }
  EXPECT_FALSE(out.Decode(good + "x"));
  // An entry count pointing past the payload must be rejected before any
  // allocation, and so must a per-entry byte length lying about its size.
  std::string lying_count = good;
  lying_count[22] = '\xFF';  // entry count u32 LE at offset 22
  EXPECT_FALSE(out.Decode(lying_count));
  std::string lying_len = good;
  lying_len[41] = '\x7F';  // high byte of entry 0's length prefix (u32 at 38)
  EXPECT_FALSE(out.Decode(lying_len));
  std::string bad_version = good;
  bad_version[0] = static_cast<char>(kExchangeVersion + 3);
  EXPECT_FALSE(out.Decode(bad_version));
}

TEST(WireTest, HelloAckNowUsTailRoundTripsAndStaysBackCompat) {
  HelloAckMsg ack;
  ack.shard_id = 4;
  ack.num_shards = 8;
  ack.now_us = 123456789ull;
  std::string tailed = ack.Encode();
  HelloAckMsg out;
  ASSERT_TRUE(out.Decode(tailed));
  EXPECT_EQ(out.shard_id, 4);
  EXPECT_EQ(out.now_us, 123456789ull);
  // A pre-telemetry peer's ack lacks the 8-byte now_us tail; it must decode
  // with now_us = 0 (the "no estimate" sentinel).
  out.now_us = 99;
  ASSERT_TRUE(out.Decode(std::string_view(tailed).substr(0, tailed.size() - 8)));
  EXPECT_EQ(out.now_us, 0u);
}

TEST(WireTest, TelemetryMsgRoundTripPreservesEverything) {
  TelemetryMsg msg;
  msg.pid = 4321;
  msg.shard = 2;
  msg.batch_index = 7;
  msg.last = 0;
  msg.now_us = 1ull << 40;
  msg.dropped = 13;
  msg.thread_names = {{100, "shard-2/control"}, {101, "shard-2/exchange"}};
  TelemetryMetric counter;
  counter.name = "jecb_test_total{shard=\"2\"}";
  counter.kind = 0;
  counter.value_bits = 42;
  TelemetryMetric gauge;
  gauge.name = "jecb_test_gauge";
  gauge.kind = 1;
  gauge.value_bits = 0x3FF0000000000000ull;  // 1.0
  msg.metrics = {counter, gauge};
  TelemetryEvent span;
  span.kind = 0;
  span.tid = 100;
  span.ts_us = 5000;
  span.dur_us = 250;
  span.name = "shard.prepare";
  span.cat = "shard";
  span.arg1_name = "txn";
  span.arg1 = -9;  // signed args must survive the u64 transit
  span.arg2_name = "shard";
  span.arg2 = 2;
  TelemetryEvent instant;
  instant.kind = 1;
  instant.tid = 100;
  instant.ts_us = 6000;
  instant.name = "fault.stall";
  instant.cat = "fault";  // both arg names empty: args absent
  msg.events = {span, instant};

  TelemetryMsg out;
  ASSERT_TRUE(out.Decode(msg.Encode()));
  EXPECT_EQ(out.pid, 4321u);
  EXPECT_EQ(out.shard, 2);
  EXPECT_EQ(out.batch_index, 7u);
  EXPECT_EQ(out.last, 0);
  EXPECT_EQ(out.now_us, 1ull << 40);
  EXPECT_EQ(out.dropped, 13u);
  ASSERT_EQ(out.thread_names.size(), 2u);
  EXPECT_EQ(out.thread_names[1].second, "shard-2/exchange");
  ASSERT_EQ(out.metrics.size(), 2u);
  EXPECT_EQ(out.metrics[0].name, "jecb_test_total{shard=\"2\"}");
  EXPECT_EQ(out.metrics[0].value_bits, 42u);
  EXPECT_EQ(out.metrics[1].kind, 1);
  ASSERT_EQ(out.events.size(), 2u);
  EXPECT_EQ(out.events[0].name, "shard.prepare");
  EXPECT_EQ(out.events[0].arg1, -9);
  EXPECT_EQ(out.events[0].arg2, 2);
  EXPECT_EQ(out.events[1].kind, 1);
  EXPECT_TRUE(out.events[1].arg1_name.empty());
}

TEST(WireTest, TelemetryMsgRejectsTruncationTrailingBytesAndBadVersion) {
  TelemetryMsg msg;
  msg.pid = 1;
  msg.shard = 0;
  msg.thread_names = {{7, "t"}};
  TelemetryMetric m;
  m.name = "n";
  msg.metrics = {m};
  TelemetryEvent e;
  e.name = "s";
  e.cat = "c";
  msg.events = {e};
  std::string good = msg.Encode();
  TelemetryMsg out;
  ASSERT_TRUE(out.Decode(good));
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(out.Decode(good.substr(0, cut))) << "cut=" << cut;
  }
  EXPECT_FALSE(out.Decode(good + "x"));
  std::string bad_version = good;
  bad_version[0] = static_cast<char>(kTelemetryVersion + 1);
  EXPECT_FALSE(out.Decode(bad_version));
}

TEST(WireTest, TelemetryMsgRejectsLyingCountsAndOversizedRings) {
  // Fixed header is 30 bytes; with all three sections empty the section
  // counts sit at offsets 30 (thread names), 34 (metrics), 38 (events).
  TelemetryMsg empty;
  std::string good = empty.Encode();
  ASSERT_EQ(good.size(), 42u);
  TelemetryMsg out;
  ASSERT_TRUE(out.Decode(good));

  // Counts the remaining payload cannot possibly hold: rejected before any
  // reserve, for each of the three sections.
  for (size_t off : {30u, 34u, 38u}) {
    std::string lying = good;
    lying[off] = '\xFF';
    EXPECT_FALSE(out.Decode(lying)) << "count offset " << off;
  }
  // A count above kMaxTelemetryEntries is hostile regardless of payload
  // size (an "oversized ring" claim).
  std::string oversized = good;
  oversized[32] = '\x02';  // thread count u32 LE = 0x00020000 > 1 << 16
  EXPECT_FALSE(out.Decode(oversized));

  // A string length prefix above kMaxTelemetryStrBytes is rejected before
  // allocation. One thread name: count at 30, tid at 34, len u16 at 38.
  TelemetryMsg named;
  named.thread_names = {{7, "ab"}};
  std::string strlie = named.Encode();
  strlie[38] = '\xFF';
  strlie[39] = '\xFF';
  EXPECT_FALSE(out.Decode(strlie));

  // Unknown kinds are rejected even when the sizes all line up.
  TelemetryMsg badkind;
  TelemetryMetric m;
  m.name = "n";
  m.kind = 2;
  badkind.metrics = {m};
  EXPECT_FALSE(out.Decode(badkind.Encode()));
  TelemetryMsg badevent;
  TelemetryEvent e;
  e.kind = 3;
  badevent.events = {e};
  EXPECT_FALSE(out.Decode(badevent.Encode()));

  // The encoder clamps hostile-length strings instead of emitting an
  // undecodable payload.
  TelemetryMsg huge;
  huge.thread_names = {{1, std::string(kMaxTelemetryStrBytes * 4, 'x')}};
  ASSERT_TRUE(out.Decode(huge.Encode()));
  ASSERT_EQ(out.thread_names.size(), 1u);
  EXPECT_EQ(out.thread_names[0].second.size(), kMaxTelemetryStrBytes);
}

TEST(WireTest, StructDecodeRejectsTruncationAndTrailingBytes) {
  FragmentMsg frag;
  frag.txn_id = 1;
  frag.accesses = {{1, 2, 0}};
  std::string good = frag.Encode();
  FragmentMsg out;
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(out.Decode(good.substr(0, cut))) << "cut=" << cut;
  }
  EXPECT_FALSE(out.Decode(good + "x"));
  // An access count pointing past the payload must be rejected, not read.
  std::string lying = good;
  lying[16] = '\xFF';  // accesses count (u32 LE) at offset 16
  EXPECT_FALSE(out.Decode(lying));
}

TEST(FrameBufferTest, DecodesAcrossArbitraryChunkBoundaries) {
  std::string stream;
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    stream += EncodeFrame(MsgType::kExecute, seq,
                          std::string(static_cast<size_t>(seq) * 7, 'a'));
  }
  // Feed one byte at a time: framing must never depend on chunk alignment.
  FrameBuffer buf;
  uint64_t next_seq = 1;
  for (char c : stream) {
    buf.Feed(&c, 1);
    Frame f;
    while (buf.Next(&f) == FrameBuffer::NextResult::kFrame) {
      EXPECT_EQ(f.seq, next_seq);
      EXPECT_EQ(f.payload.size(), static_cast<size_t>(next_seq) * 7);
      ++next_seq;
    }
  }
  EXPECT_EQ(next_seq, 6u);
  EXPECT_EQ(buf.buffered_bytes(), 0u);
}

TEST(FrameBufferTest, TruncatedFrameNeedsMoreNeverCorrupt) {
  std::string bytes = EncodeFrame(MsgType::kVote, 9, "payload");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameBuffer buf;
    buf.Feed(bytes.data(), cut);
    Frame f;
    EXPECT_EQ(buf.Next(&f), FrameBuffer::NextResult::kNeedMore) << "cut=" << cut;
  }
}

TEST(FrameBufferTest, CorruptedPayloadFailsCrcAndSticks) {
  std::string bytes = EncodeFrame(MsgType::kCommit, 1, "data-to-corrupt");
  bytes[kFrameHeaderBytes + 3] ^= 0x40;  // flip one payload bit
  FrameBuffer buf;
  buf.Feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(buf.Next(&f), FrameBuffer::NextResult::kCorrupt);
  EXPECT_FALSE(buf.error().ok());
  // Sticky: even after feeding a pristine frame the stream stays dead.
  std::string good = EncodeFrame(MsgType::kCommit, 2, "fine");
  buf.Feed(good.data(), good.size());
  EXPECT_EQ(buf.Next(&f), FrameBuffer::NextResult::kCorrupt);
}

TEST(FrameBufferTest, RejectsBadVersionUnknownTypeAndOversizedLength) {
  Frame f;
  {
    std::string bytes = EncodeFrame(MsgType::kHello, 1, "x");
    bytes[4] = static_cast<char>(kWireVersion + 1);  // version byte
    FrameBuffer buf;
    buf.Feed(bytes.data(), bytes.size());
    EXPECT_EQ(buf.Next(&f), FrameBuffer::NextResult::kCorrupt);
  }
  {
    std::string bytes = EncodeFrame(MsgType::kHello, 1, "x");
    bytes[5] = 0x7F;  // type byte: no such message
    FrameBuffer buf;
    buf.Feed(bytes.data(), bytes.size());
    EXPECT_EQ(buf.Next(&f), FrameBuffer::NextResult::kCorrupt);
  }
  {
    // A length beyond the cap is rejected from the header alone — the
    // decoder must not wait for (or allocate) a gigabyte of "payload".
    std::string bytes = EncodeFrame(MsgType::kHello, 1, "x");
    bytes[0] = '\xFF';
    bytes[1] = '\xFF';
    bytes[2] = '\xFF';
    bytes[3] = '\x3F';
    FrameBuffer buf;
    buf.Feed(bytes.data(), bytes.size());
    EXPECT_EQ(buf.Next(&f), FrameBuffer::NextResult::kCorrupt);
  }
}

TEST(FrameBufferTest, HostileLengthPrefixRejectedFromHeaderAlone) {
  // A hostile peer sends a 20-byte header claiming a huge payload. The old
  // check order trusted the u32 length before looking at anything else, so a
  // garbage frame with a sane-looking length could park the decoder in
  // kNeedMore waiting for gigabytes that never come (while buffering
  // everything fed to it). The cap check must run FIRST, from the header
  // alone: no payload bytes, no allocation, immediate sticky corruption.
  uint64_t rng = 0xFEED;
  auto next_rand = [&rng] {
    rng = HashInt64(rng + 0x9E3779B97F4A7C15ull);
    return rng;
  };
  for (int iter = 0; iter < 200; ++iter) {
    std::string header(kFrameHeaderBytes, '\0');
    for (char& c : header) c = static_cast<char>(next_rand());
    // Length prefix: anything strictly past the cap, up to 0xFFFFFFFF.
    const uint64_t span = 0xFFFFFFFFull - kMaxPayloadBytes;
    uint32_t evil_len =
        static_cast<uint32_t>(kMaxPayloadBytes + 1 + next_rand() % span);
    header[0] = static_cast<char>(evil_len & 0xFF);
    header[1] = static_cast<char>((evil_len >> 8) & 0xFF);
    header[2] = static_cast<char>((evil_len >> 16) & 0xFF);
    header[3] = static_cast<char>((evil_len >> 24) & 0xFF);
    FrameBuffer buf;
    buf.Feed(header.data(), header.size());
    Frame f;
    ASSERT_EQ(buf.Next(&f), FrameBuffer::NextResult::kCorrupt)
        << "iter=" << iter << " len=" << evil_len;
    EXPECT_FALSE(buf.error().ok());
    // Sticky: later pristine frames must not resurrect the stream.
    std::string good = EncodeFrame(MsgType::kHello, 1, "x");
    buf.Feed(good.data(), good.size());
    EXPECT_EQ(buf.Next(&f), FrameBuffer::NextResult::kCorrupt);
  }
}

TEST(FrameBufferTest, MutationFuzzNeverCrashesOrDesyncsSilently) {
  // Deterministic fuzz: mutate valid frames with seed-driven single-byte
  // flips and truncations; the decoder must always answer kFrame /
  // kNeedMore / kCorrupt without crashing, and any frame it does yield from
  // an uncorrupted prefix must round-trip its header fields sanely.
  uint64_t rng = 0xF022;
  auto next_rand = [&rng] {
    rng = HashInt64(rng + 0x9E3779B97F4A7C15ull);
    return rng;
  };
  for (int iter = 0; iter < 2000; ++iter) {
    std::string payload(static_cast<size_t>(next_rand() % 64), 'p');
    std::string bytes =
        EncodeFrame(static_cast<MsgType>(1 + next_rand() % 11),
                    1 + next_rand() % 1000, payload);
    switch (next_rand() % 3) {
      case 0:  // single byte flip
        bytes[next_rand() % bytes.size()] ^=
            static_cast<char>(1 + next_rand() % 255);
        break;
      case 1:  // truncate
        bytes.resize(next_rand() % bytes.size());
        break;
      default:  // pristine
        break;
    }
    FrameBuffer buf;
    buf.Feed(bytes.data(), bytes.size());
    Frame f;
    for (int drain = 0; drain < 4; ++drain) {
      FrameBuffer::NextResult r = buf.Next(&f);
      if (r == FrameBuffer::NextResult::kFrame) {
        EXPECT_LE(f.payload.size(), kMaxPayloadBytes);
        continue;
      }
      SUCCEED();  // kNeedMore / kCorrupt both legal under mutation
      break;
    }
  }
}

TEST(FrameBufferTest, RandomGarbageNeverYieldsAFrame)
{
  uint64_t rng = 0xBAD;
  auto next_rand = [&rng] {
    rng = HashInt64(rng + 0x9E3779B97F4A7C15ull);
    return rng;
  };
  int frames = 0;
  for (int iter = 0; iter < 500; ++iter) {
    std::string garbage(32 + next_rand() % 200, '\0');
    for (char& c : garbage) c = static_cast<char>(next_rand());
    FrameBuffer buf;
    buf.Feed(garbage.data(), garbage.size());
    Frame f;
    if (buf.Next(&f) == FrameBuffer::NextResult::kFrame) ++frames;
  }
  // A CRC + version + type + size check surviving random garbage should be
  // a ~2^-32 event; zero hits expected over 500 tries.
  EXPECT_EQ(frames, 0);
}

TEST(EventLoopTest, UnixSocketEchoWithDedupAndShutdown) {
  std::string dir;
  {
    const char* tmp = std::getenv("TMPDIR");
    std::string tmpl = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
    tmpl += "/jecb-net-test-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    ASSERT_NE(mkdtemp(buf.data()), nullptr);
    dir.assign(buf.data());
  }
  SocketAddr addr;
  addr.is_unix = true;
  addr.path = dir + "/echo.sock";
  Result<Socket> listener = Listen(addr);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  ClearStopFlag();
  EventLoopStats server_stats;
  std::thread server([&listener, &server_stats] {
    EventLoop loop(std::move(listener).value());
    int64_t peer = 0;
    Frame frame;
    uint64_t out_seq = 0;
    while (loop.Next(&peer, &frame)) {
      if (frame.type == MsgType::kShutdown) {
        loop.RequestStop();
        continue;
      }
      loop.Send(peer, MsgType::kExecuteAck, ++out_seq, frame.payload);
    }
    server_stats = loop.stats();
  });

  Result<Socket> conn = Connect(addr);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  Socket client = std::move(conn).value();

  // Two copies of seq 1: the second must be dedup-dropped, so exactly one
  // echo comes back.
  std::string req = EncodeFrame(MsgType::kExecute, 1, "ping");
  ASSERT_TRUE(SendAll(client, req.data(), req.size()).ok());
  ASSERT_TRUE(SendAll(client, req.data(), req.size()).ok());
  std::string req2 = EncodeFrame(MsgType::kExecute, 2, "pong");
  ASSERT_TRUE(SendAll(client, req2.data(), req2.size()).ok());

  FrameBuffer in;
  std::vector<Frame> replies;
  char chunk[4096];
  while (replies.size() < 2) {
    Frame f;
    while (in.Next(&f) == FrameBuffer::NextResult::kFrame) replies.push_back(f);
    if (replies.size() >= 2) break;
    RecvSomeResult r = RecvSome(client, chunk, sizeof(chunk));
    ASSERT_GT(r.n, 0) << r.status.ToString();
    in.Feed(chunk, static_cast<size_t>(r.n));
  }
  EXPECT_EQ(replies[0].payload, "ping");
  EXPECT_EQ(replies[1].payload, "pong");

  std::string bye = EncodeFrame(MsgType::kShutdown, 3, {});
  ASSERT_TRUE(SendAll(client, bye.data(), bye.size()).ok());
  server.join();
  EXPECT_EQ(server_stats.dedup_dropped, 1u);
  EXPECT_EQ(server_stats.frames_received, 4u);  // dup counted as received
  EXPECT_EQ(server_stats.frames_sent, 2u);
  EXPECT_EQ(server_stats.peers_accepted, 1u);
  unlink(addr.path.c_str());
  rmdir(dir.c_str());
}

TEST(EventLoopTest, ReconnectGetsFreshDedupWatermark) {
  // The watermark contract (net/event_loop.h): dedup state is per
  // CONNECTION, not per peer identity. A sender that reconnects restarts its
  // sequence at 1 (FaultyChannel::Reset clears socket + buffer + send_seq
  // together), and the server must NOT mistake the restarted seq 1 for a
  // duplicate of the old connection's seq 1 — otherwise every frame after a
  // reconnect fault would be silently swallowed mid-replay.
  SocketAddr addr;
  addr.is_unix = false;
  addr.port = 0;
  Result<Socket> listener = Listen(addr);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  Result<uint16_t> port = BoundTcpPort(listener.value());
  ASSERT_TRUE(port.ok());
  addr.port = port.value();

  ClearStopFlag();
  EventLoopStats server_stats;
  std::thread server([&listener, &server_stats] {
    EventLoop loop(std::move(listener).value());
    int64_t peer = 0;
    Frame frame;
    uint64_t out_seq = 0;
    while (loop.Next(&peer, &frame)) {
      if (frame.type == MsgType::kShutdown) {
        loop.RequestStop();
        continue;
      }
      loop.Send(peer, MsgType::kExecuteAck, ++out_seq, frame.payload);
    }
    server_stats = loop.stats();
  });

  auto exchange_once = [&addr](const std::string& tag, bool send_dup) {
    Result<Socket> conn = Connect(addr);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    Socket client = std::move(conn).value();
    // Fresh connection, fresh sequence: seq restarts at 1 on purpose.
    std::string req = EncodeFrame(MsgType::kExecute, 1, tag);
    ASSERT_TRUE(SendAll(client, req.data(), req.size()).ok());
    if (send_dup) ASSERT_TRUE(SendAll(client, req.data(), req.size()).ok());
    FrameBuffer in;
    Frame f;
    char chunk[4096];
    for (;;) {
      FrameBuffer::NextResult res = in.Next(&f);
      if (res == FrameBuffer::NextResult::kFrame) break;
      ASSERT_EQ(res, FrameBuffer::NextResult::kNeedMore);
      RecvSomeResult r = RecvSome(client, chunk, sizeof(chunk));
      ASSERT_GT(r.n, 0) << r.status.ToString();
      in.Feed(chunk, static_cast<size_t>(r.n));
    }
    EXPECT_EQ(f.payload, tag);  // echoed, i.e. NOT dedup-dropped
    // client closes here: the next call reconnects from scratch
  };
  exchange_once("first-conn", /*send_dup=*/true);
  exchange_once("second-conn", /*send_dup=*/false);
  exchange_once("third-conn", /*send_dup=*/false);

  Result<Socket> conn = Connect(addr);
  ASSERT_TRUE(conn.ok());
  Socket client = std::move(conn).value();
  std::string bye = EncodeFrame(MsgType::kShutdown, 1, {});
  ASSERT_TRUE(SendAll(client, bye.data(), bye.size()).ok());
  server.join();
  // Three connections, one echo each: only the intra-connection duplicate
  // was dropped; the restarted seq-1 frames were all served.
  EXPECT_EQ(server_stats.dedup_dropped, 1u);
  EXPECT_EQ(server_stats.frames_sent, 3u);
  EXPECT_EQ(server_stats.peers_accepted, 4u);
}

TEST(EventLoopTest, StopFlagUnblocksNext) {
  SocketAddr addr;
  addr.is_unix = false;
  addr.port = 0;
  Result<Socket> listener = Listen(addr);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ClearStopFlag();
  std::thread server([&listener] {
    EventLoop loop(std::move(listener).value());
    int64_t peer = 0;
    Frame frame;
    EXPECT_FALSE(loop.Next(&peer, &frame));  // stop flag, not a frame
    EXPECT_TRUE(loop.stopped());
  });
  // The poll timeout bounds how long the loop takes to notice the flag.
  RaiseStopFlag();
  server.join();
  ClearStopFlag();
}

}  // namespace
}  // namespace jecb::net
