#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "test_util.h"

namespace jecb {
namespace {

TEST(SchemaTest, AddTableAndColumns) {
  Schema s;
  auto t = s.AddTable("T");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(s.AddColumn(t.value(), "A", ValueType::kInt64).ok());
  EXPECT_TRUE(s.AddColumn(t.value(), "B", ValueType::kString).ok());
  EXPECT_EQ(s.table(t.value()).columns.size(), 2u);
  EXPECT_EQ(s.table(t.value()).columns[1].type, ValueType::kString);
}

TEST(SchemaTest, DuplicateTableRejected) {
  Schema s;
  ASSERT_TRUE(s.AddTable("T").ok());
  auto dup = s.AddTable("t");  // case-insensitive
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, DuplicateColumnRejected) {
  Schema s;
  TableId t = s.AddTable("T").value();
  ASSERT_TRUE(s.AddColumn(t, "A", ValueType::kInt64).ok());
  EXPECT_EQ(s.AddColumn(t, "a", ValueType::kInt64).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, FindTableCaseInsensitive) {
  Schema s;
  TableId t = s.AddTable("Warehouse").value();
  EXPECT_EQ(s.FindTable("WAREHOUSE").value(), t);
  EXPECT_EQ(s.FindTable("warehouse").value(), t);
  EXPECT_FALSE(s.FindTable("nope").ok());
  EXPECT_TRUE(s.HasTable("wareHouse"));
}

TEST(SchemaTest, PrimaryKeyRequiresExistingColumns) {
  Schema s;
  TableId t = s.AddTable("T").value();
  ASSERT_TRUE(s.AddColumn(t, "A", ValueType::kInt64).ok());
  EXPECT_FALSE(s.SetPrimaryKey(t, {"A", "B"}).ok());
  EXPECT_TRUE(s.SetPrimaryKey(t, {"A"}).ok());
  EXPECT_EQ(s.table(t).primary_key.size(), 1u);
}

TEST(SchemaTest, ForeignKeyMustReferenceUniqueKey) {
  Schema s;
  TableId p = s.AddTable("P").value();
  ASSERT_TRUE(s.AddColumn(p, "P_ID", ValueType::kInt64).ok());
  ASSERT_TRUE(s.AddColumn(p, "P_X", ValueType::kInt64).ok());
  ASSERT_TRUE(s.SetPrimaryKey(p, {"P_ID"}).ok());
  TableId c = s.AddTable("C").value();
  ASSERT_TRUE(s.AddColumn(c, "C_P", ValueType::kInt64).ok());

  // P_X is not a unique key.
  EXPECT_FALSE(s.AddForeignKey("C", {"C_P"}, "P", {"P_X"}).ok());
  EXPECT_TRUE(s.AddForeignKey("C", {"C_P"}, "P", {"P_ID"}).ok());
  ASSERT_EQ(s.foreign_keys().size(), 1u);
  EXPECT_EQ(s.foreign_keys()[0].ref_table, p);
}

TEST(SchemaTest, ForeignKeyToAlternateUniqueKey) {
  Schema s;
  TableId p = s.AddTable("P").value();
  ASSERT_TRUE(s.AddColumn(p, "P_ID", ValueType::kInt64).ok());
  ASSERT_TRUE(s.AddColumn(p, "P_ALT", ValueType::kInt64).ok());
  ASSERT_TRUE(s.SetPrimaryKey(p, {"P_ID"}).ok());
  ASSERT_TRUE(s.AddUniqueKey(p, {"P_ALT"}).ok());
  TableId c = s.AddTable("C").value();
  ASSERT_TRUE(s.AddColumn(c, "C_P", ValueType::kInt64).ok());
  EXPECT_TRUE(s.AddForeignKey("C", {"C_P"}, "P", {"P_ALT"}).ok());
}

TEST(SchemaTest, ForeignKeyArityMismatchRejected) {
  Schema s = testing::MakeCustInfoSchema();
  EXPECT_FALSE(
      s.AddForeignKey("TRADE", {"T_CA_ID", "T_QTY"}, "CUSTOMER_ACCOUNT", {"CA_ID"})
          .ok());
  EXPECT_FALSE(s.AddForeignKey("TRADE", {}, "CUSTOMER_ACCOUNT", {}).ok());
}

TEST(SchemaTest, ForeignKeysFromAndTo) {
  Schema s = testing::MakeCustInfoSchema();
  TableId ca = s.FindTable("CUSTOMER_ACCOUNT").value();
  TableId trade = s.FindTable("TRADE").value();
  EXPECT_EQ(s.ForeignKeysFrom(trade).size(), 1u);
  EXPECT_EQ(s.ForeignKeysTo(ca).size(), 2u);  // TRADE and HOLDING_SUMMARY
  EXPECT_EQ(s.ForeignKeysFrom(ca).size(), 1u);
}

TEST(SchemaTest, QualifiedNameRoundTrip) {
  Schema s = testing::MakeCustInfoSchema();
  auto ref = s.ResolveQualified("TRADE.T_CA_ID");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(s.QualifiedName(ref.value()), "TRADE.T_CA_ID");
  EXPECT_FALSE(s.ResolveQualified("TRADE").ok());
  EXPECT_FALSE(s.ResolveQualified("NOPE.X").ok());
  EXPECT_FALSE(s.ResolveQualified("TRADE.NOPE").ok());
}

TEST(TableTest, IsUniqueKeyOrderInsensitive) {
  Schema s = testing::MakeCustInfoSchema();
  const Table& hs = s.table(s.FindTable("HOLDING_SUMMARY").value());
  ColumnIdx symb = hs.FindColumn("HS_S_SYMB").value();
  ColumnIdx ca = hs.FindColumn("HS_CA_ID").value();
  EXPECT_TRUE(hs.IsUniqueKey({symb, ca}));
  EXPECT_TRUE(hs.IsUniqueKey({ca, symb}));
  EXPECT_FALSE(hs.IsUniqueKey({ca}));
}

TEST(TableTest, FindColumnIsCaseInsensitive) {
  Schema s = testing::MakeCustInfoSchema();
  const Table& t = s.table(s.FindTable("TRADE").value());
  EXPECT_TRUE(t.FindColumn("t_qty").ok());
  EXPECT_FALSE(t.FindColumn("missing").ok());
  EXPECT_TRUE(t.HasColumn("T_ID"));
}

TEST(SchemaTest, AccessClassDefaultsToPartitioned) {
  Schema s = testing::MakeCustInfoSchema();
  for (const Table& t : s.tables()) {
    EXPECT_EQ(t.access_class, AccessClass::kPartitioned) << t.name;
  }
}

}  // namespace
}  // namespace jecb
