#include <gtest/gtest.h>

#include <algorithm>

#include "partition/bin_packing.h"
#include "test_util.h"

namespace jecb {
namespace {

TEST(BinPackingTest, BalancesEqualHeats) {
  std::vector<uint64_t> heats(16, 10);
  auto packing = PackPartitionsByHeat(heats, 4);
  auto loads = NodeLoads(heats, packing, 4);
  for (uint64_t l : loads) EXPECT_EQ(l, 40u);
}

TEST(BinPackingTest, SpreadsHotPartitions) {
  // Four hot micro-partitions must land on four different nodes.
  std::vector<uint64_t> heats = {100, 100, 100, 100, 1, 1, 1, 1};
  auto packing = PackPartitionsByHeat(heats, 4);
  std::set<int32_t> hot_nodes = {packing[0], packing[1], packing[2], packing[3]};
  EXPECT_EQ(hot_nodes.size(), 4u);
}

TEST(BinPackingTest, LptNearOptimalOnSkewedHeats) {
  // Zipf-ish heats: LPT keeps max load within ~4/3 of the lower bound.
  std::vector<uint64_t> heats;
  for (int i = 1; i <= 64; ++i) heats.push_back(10000 / i);
  auto packing = PackPartitionsByHeat(heats, 8);
  auto loads = NodeLoads(heats, packing, 8);
  uint64_t total = 0;
  for (uint64_t h : heats) total += h;
  uint64_t max_load = *std::max_element(loads.begin(), loads.end());
  uint64_t lower_bound =
      std::max<uint64_t>(heats[0], (total + 7) / 8);  // biggest item or avg
  EXPECT_LE(max_load, lower_bound * 4 / 3 + 1);
}

TEST(BinPackingTest, PackingStaysInRange) {
  std::vector<uint64_t> heats = {5, 3, 8, 1, 9, 2};
  auto packing = PackPartitionsByHeat(heats, 3);
  ASSERT_EQ(packing.size(), heats.size());
  for (int32_t n : packing) {
    EXPECT_GE(n, 0);
    EXPECT_LT(n, 3);
  }
}

class MapToNodesTest : public ::testing::Test {
 protected:
  MapToNodesTest()
      : fixture_(testing::MakeCustInfoDb()),
        micro_(4, fixture_.db->schema().num_tables()) {
    const Schema& s = fixture_.db->schema();
    // Micro-partition TRADE by T_ID range into 4; replicate CUSTOMER.
    JoinPath p;
    p.source_table = s.FindTable("TRADE").value();
    p.dest = s.ResolveQualified("TRADE.T_ID").value();
    micro_.Set(p.source_table, std::make_shared<JoinPathPartitioner>(
                                   p, std::make_shared<RangeMapping>(4, 1, 8)));
    micro_.Set(s.FindTable("CUSTOMER").value(), std::make_shared<ReplicatedTable>());
  }

  testing::CustInfoDb fixture_;
  DatabaseSolution micro_;
};

TEST_F(MapToNodesTest, RemapsThroughPacking) {
  // Micro-partitions {0,1,2,3}; pack 0,3 -> node 0 and 1,2 -> node 1.
  DatabaseSolution node_level = MapPartitionsToNodes(micro_, {0, 1, 1, 0}, 2);
  EXPECT_EQ(node_level.num_partitions(), 2);
  // Trade 1 (T_ID=1) is micro 0 -> node 0; trade 8 (T_ID=8) micro 3 -> node 0.
  EXPECT_EQ(node_level.PartitionOf(*fixture_.db, fixture_.trades[0]), 0);
  EXPECT_EQ(node_level.PartitionOf(*fixture_.db, fixture_.trades[7]), 0);
  // Trade 4 (T_ID=4) is micro 1 -> node 1.
  EXPECT_EQ(node_level.PartitionOf(*fixture_.db, fixture_.trades[3]), 1);
  // Replication passes through.
  EXPECT_EQ(node_level.PartitionOf(*fixture_.db, fixture_.customers[0]), kReplicated);
}

TEST_F(MapToNodesTest, PackSolutionReducesSkew) {
  // A trace that hammers micro-partition 0 (trades 1-2): direct k=2
  // placement by halving would overload one node; heat packing rebalances.
  Trace trace;
  uint32_t cls = trace.InternClass("Hot");
  for (int i = 0; i < 90; ++i) {
    Transaction txn;
    txn.class_id = cls;
    txn.Read(fixture_.trades[i % 2]);  // trades 1 and 2: micro partitions 0, 0
    trace.Add(std::move(txn));
  }
  for (int i = 0; i < 10; ++i) {
    Transaction txn;
    txn.class_id = cls;
    txn.Read(fixture_.trades[2 + i % 6]);
    trace.Add(std::move(txn));
  }
  std::vector<int32_t> packing;
  DatabaseSolution packed = PackSolution(*fixture_.db, micro_, trace, 2, &packing);
  ASSERT_EQ(packing.size(), 4u);
  // The hot micro-partition must sit alone (or with the lightest ones).
  EvalResult before = Evaluate(*fixture_.db, micro_, trace);
  EvalResult after = Evaluate(*fixture_.db, packed, trace);
  // Node-level load skew must not exceed the 4-way micro skew.
  EXPECT_LE(after.LoadSkew(), before.LoadSkew() + 1e-9);
  // And packing never makes transactions distributed that were local.
  EXPECT_EQ(after.distributed_txns, before.distributed_txns);
}

TEST_F(MapToNodesTest, DescribeMentionsPacking) {
  DatabaseSolution node_level = MapPartitionsToNodes(micro_, {0, 1, 1, 0}, 2);
  const Schema& s = fixture_.db->schema();
  std::string desc =
      node_level.Get(s.FindTable("TRADE").value())->Describe(s);
  EXPECT_NE(desc.find("packed onto nodes"), std::string::npos);
}

}  // namespace
}  // namespace jecb
