#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "partition/evaluator.h"
#include "test_util.h"

namespace jecb {
namespace {

/// Builds a two-partition solution over the CustInfo fixture that realizes
/// the paper's Figure 1 coloring: everything partitioned by CA_C_ID, with
/// f(1) = red(0) and f(2) = blue(1).
class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest()
      : fixture_(testing::MakeCustInfoDb()),
        solution_(2, fixture_.db->schema().num_tables()) {
    const Schema& s = schema();
    auto mapping = std::make_shared<RangeMapping>(2, 1, 2);  // 1 -> 0, 2 -> 1
    auto path_for = [&](const char* table, std::vector<FkIdx> hops) {
      JoinPath p;
      p.source_table = s.FindTable(table).value();
      p.hops = std::move(hops);
      p.dest = s.ResolveQualified("CUSTOMER_ACCOUNT.CA_C_ID").value();
      CheckOk(p.Validate(s), "EvaluatorTest");
      return p;
    };
    FkIdx trade_ca = 0, hs_ca = 0;
    for (FkIdx f = 0; f < s.foreign_keys().size(); ++f) {
      if (s.foreign_keys()[f].table == s.FindTable("TRADE").value()) trade_ca = f;
      if (s.foreign_keys()[f].table == s.FindTable("HOLDING_SUMMARY").value()) hs_ca = f;
    }
    JoinPath ca_path;
    ca_path.source_table = s.FindTable("CUSTOMER_ACCOUNT").value();
    ca_path.dest = s.ResolveQualified("CUSTOMER_ACCOUNT.CA_C_ID").value();

    solution_.Set(s.FindTable("CUSTOMER_ACCOUNT").value(),
                  std::make_shared<JoinPathPartitioner>(ca_path, mapping));
    solution_.Set(s.FindTable("TRADE").value(),
                  std::make_shared<JoinPathPartitioner>(
                      path_for("TRADE", {trade_ca}), mapping));
    solution_.Set(s.FindTable("HOLDING_SUMMARY").value(),
                  std::make_shared<JoinPathPartitioner>(
                      path_for("HOLDING_SUMMARY", {hs_ca}), mapping));
    solution_.Set(s.FindTable("CUSTOMER").value(), std::make_shared<ReplicatedTable>());
  }

  const Schema& schema() const { return fixture_.db->schema(); }
  Database& db() { return *fixture_.db; }

  testing::CustInfoDb fixture_;
  DatabaseSolution solution_;
};

TEST_F(EvaluatorTest, FigureOneColoringIsRealized) {
  // Trades of accounts 1 and 8 are red (partition 0), of 7 and 10 blue (1).
  const int expected[8] = {0, 1, 1, 0, 0, 1, 0, 1};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(solution_.PartitionOf(db(), fixture_.trades[i]), expected[i]);
  }
}

TEST_F(EvaluatorTest, CustInfoTransactionsAreSinglePartition) {
  Trace trace = testing::MakeCustInfoTrace(fixture_);
  EvalResult r = Evaluate(db(), solution_, trace);
  EXPECT_EQ(r.distributed_txns, 0u);
  EXPECT_EQ(r.total_txns, trace.size());
  EXPECT_DOUBLE_EQ(r.cost(), 0.0);
}

TEST_F(EvaluatorTest, CrossCustomerTransactionIsDistributed) {
  Trace trace;
  uint32_t cls = trace.InternClass("Cross");
  Transaction txn;
  txn.class_id = cls;
  txn.Read(fixture_.trades[0]);  // customer 1
  txn.Read(fixture_.trades[1]);  // customer 2
  trace.Add(std::move(txn));
  EvalResult r = Evaluate(db(), solution_, trace);
  EXPECT_EQ(r.distributed_txns, 1u);
  EXPECT_DOUBLE_EQ(r.cost(), 1.0);
  EXPECT_EQ(r.partitions_touched, 2u);
}

TEST_F(EvaluatorTest, ReplicatedReadIsFreeButWriteDistributes) {
  Trace trace;
  uint32_t cls = trace.InternClass("C");
  {
    // Reading a replicated CUSTOMER tuple adds no partition: local.
    Transaction txn;
    txn.class_id = cls;
    txn.Read(fixture_.customers[0]);
    txn.Read(fixture_.trades[0]);
    trace.Add(std::move(txn));
  }
  {
    // Writing a replicated tuple makes the txn distributed (Definition 5.1).
    Transaction txn;
    txn.class_id = cls;
    txn.Write(fixture_.customers[0]);
    trace.Add(std::move(txn));
  }
  EvalResult r = Evaluate(db(), solution_, trace);
  EXPECT_EQ(r.total_txns, 2u);
  EXPECT_EQ(r.distributed_txns, 1u);
}

TEST_F(EvaluatorTest, AllReplicatedReadsAreLocal) {
  Trace trace;
  uint32_t cls = trace.InternClass("C");
  Transaction txn;
  txn.class_id = cls;
  txn.Read(fixture_.customers[0]);
  txn.Read(fixture_.customers[1]);
  trace.Add(std::move(txn));
  EXPECT_EQ(Evaluate(db(), solution_, trace).distributed_txns, 0u);
}

TEST_F(EvaluatorTest, PerClassBreakdown) {
  Trace trace;
  uint32_t local_cls = trace.InternClass("Local");
  uint32_t cross_cls = trace.InternClass("Cross");
  for (int i = 0; i < 3; ++i) {
    Transaction txn;
    txn.class_id = local_cls;
    txn.Read(fixture_.trades[0]);
    trace.Add(std::move(txn));
  }
  Transaction txn;
  txn.class_id = cross_cls;
  txn.Read(fixture_.trades[0]);
  txn.Read(fixture_.trades[1]);
  trace.Add(std::move(txn));

  EvalResult r = Evaluate(db(), solution_, trace);
  EXPECT_DOUBLE_EQ(r.class_cost(local_cls), 0.0);
  EXPECT_DOUBLE_EQ(r.class_cost(cross_cls), 1.0);
  EXPECT_DOUBLE_EQ(r.cost(), 0.25);
}

TEST_F(EvaluatorTest, UnassignedTableDefaultsToReplicated) {
  DatabaseSolution empty(2, schema().num_tables());
  Trace trace;
  uint32_t cls = trace.InternClass("C");
  Transaction read_txn;
  read_txn.class_id = cls;
  read_txn.Read(fixture_.trades[0]);
  trace.Add(std::move(read_txn));
  Transaction write_txn;
  write_txn.class_id = cls;
  write_txn.Write(fixture_.trades[0]);
  trace.Add(std::move(write_txn));
  EvalResult r = Evaluate(db(), empty, trace);
  EXPECT_EQ(r.distributed_txns, 1u);  // only the write
}

TEST_F(EvaluatorTest, LoadSkewZeroWhenBalanced) {
  EvalResult r;
  r.partition_load = {100, 100, 100, 100};
  EXPECT_DOUBLE_EQ(r.LoadSkew(), 0.0);
  r.partition_load = {200, 0, 0, 0};
  EXPECT_GT(r.LoadSkew(), 1.0);
}

TEST_F(EvaluatorTest, IsDistributedReportsTouchedPartitions) {
  Transaction txn;
  txn.Read(fixture_.trades[0]);
  txn.Read(fixture_.trades[3]);  // same customer -> same partition
  std::vector<int32_t> touched;
  EXPECT_FALSE(IsDistributed(db(), solution_, txn, &touched));
  EXPECT_EQ(touched.size(), 1u);
}

TEST_F(EvaluatorTest, ParallelEvaluateMatchesSerialBitwise) {
  Trace trace = testing::MakeCustInfoTrace(fixture_, /*repetitions=*/16);
  {
    // A distributed transaction so every counter is exercised.
    Transaction txn;
    txn.class_id = trace.FindClass("CustInfo").value();
    txn.Read(fixture_.trades[0]);
    txn.Read(fixture_.trades[1]);
    trace.Add(std::move(txn));
  }
  EvalResult serial = Evaluate(db(), solution_, trace);
  for (int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    EvalResult parallel = Evaluate(db(), solution_, trace, &pool);
    EXPECT_EQ(parallel.total_txns, serial.total_txns);
    EXPECT_EQ(parallel.distributed_txns, serial.distributed_txns);
    EXPECT_EQ(parallel.partitions_touched, serial.partitions_touched);
    EXPECT_EQ(parallel.class_total, serial.class_total);
    EXPECT_EQ(parallel.class_distributed, serial.class_distributed);
    EXPECT_EQ(parallel.partition_load, serial.partition_load);
  }
}

/// A 12-row single-table database partitioned row -> partition i, so one
/// transaction can span arbitrarily many partitions.
class WidePartitionTest : public ::testing::Test {
 protected:
  WidePartitionTest() {
    Schema s;
    TableId t = s.AddTable("WIDE").value();
    CheckOk(s.AddColumn(t, "ID", ValueType::kInt64), "wide schema");
    CheckOk(s.SetPrimaryKey(t, {"ID"}), "wide schema");
    db_ = std::make_unique<Database>(std::move(s));
    for (int64_t i = 0; i < 12; ++i) {
      rows_.push_back(db_->MustInsert("WIDE", {i}));
    }
    solution_ = std::make_unique<DatabaseSolution>(12, db_->schema().num_tables());
    JoinPath path;
    path.source_table = 0;
    path.dest = ColumnRef{0, 0};
    solution_->Set(0, std::make_shared<JoinPathPartitioner>(
                          path, std::make_shared<RangeMapping>(12, 0, 11)));
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<DatabaseSolution> solution_;
  std::vector<TupleId> rows_;
};

TEST_F(WidePartitionTest, TouchedSpillsBeyondEightPartitions) {
  // Regression: partitions 9+ used to be dropped from `touched`, so
  // partition_load and partitions_touched undercounted wide transactions.
  Transaction txn;
  for (int i = 0; i < 10; ++i) txn.Read(rows_[i]);
  std::vector<int32_t> touched;
  EXPECT_TRUE(IsDistributed(*db_, *solution_, txn, &touched));
  ASSERT_EQ(touched.size(), 10u);
  std::sort(touched.begin(), touched.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(touched[i], i);
}

TEST_F(WidePartitionTest, EvaluateCountsAllSpilledPartitions) {
  Trace trace;
  uint32_t cls = trace.InternClass("Wide");
  Transaction txn;
  txn.class_id = cls;
  for (int i = 0; i < 10; ++i) txn.Read(rows_[i]);
  trace.Add(std::move(txn));

  EvalResult r = Evaluate(*db_, *solution_, trace);
  EXPECT_EQ(r.distributed_txns, 1u);
  EXPECT_EQ(r.partitions_touched, 10u);
  ASSERT_EQ(r.partition_load.size(), 12u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.partition_load[i], 1u) << "partition " << i;
  EXPECT_EQ(r.partition_load[10], 0u);
  EXPECT_EQ(r.partition_load[11], 0u);
}

TEST_F(WidePartitionTest, DuplicateAccessesBeyondSpillStayDeduplicated) {
  Transaction txn;
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 12; ++i) txn.Read(rows_[i]);
  }
  std::vector<int32_t> touched;
  EXPECT_TRUE(IsDistributed(*db_, *solution_, txn, &touched));
  EXPECT_EQ(touched.size(), 12u);
}

TEST(EvalResultMergeTest, MergeSumsAndGrowsVectors) {
  EvalResult a;
  a.total_txns = 3;
  a.distributed_txns = 1;
  a.partitions_touched = 2;
  a.class_total = {2, 1};
  a.class_distributed = {1, 0};
  a.partition_load = {1, 1};
  EvalResult b;
  b.total_txns = 5;
  b.distributed_txns = 2;
  b.partitions_touched = 4;
  b.class_total = {0, 4, 1};
  b.class_distributed = {0, 2, 0};
  b.partition_load = {0, 3, 1};
  a.Merge(b);
  EXPECT_EQ(a.total_txns, 8u);
  EXPECT_EQ(a.distributed_txns, 3u);
  EXPECT_EQ(a.partitions_touched, 6u);
  EXPECT_EQ(a.class_total, (std::vector<uint64_t>{2, 5, 1}));
  EXPECT_EQ(a.class_distributed, (std::vector<uint64_t>{1, 2, 0}));
  EXPECT_EQ(a.partition_load, (std::vector<uint64_t>{1, 4, 1}));
}

TEST_F(EvaluatorTest, DescribeListsEveryTable) {
  std::string desc = solution_.Describe(schema());
  for (const Table& t : schema().tables()) {
    EXPECT_NE(desc.find(t.name), std::string::npos);
  }
  EXPECT_NE(desc.find("replicated"), std::string::npos);
}

}  // namespace
}  // namespace jecb
