#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/token.h"
#include "test_util.h"

namespace jecb::sql {
namespace {

// ----------------------------------------------------------------- Lexer --

TEST(LexerTest, BasicTokens) {
  auto tokens = Lex("SELECT a_1 FROM t WHERE x = @p AND y <= 3.5;").value();
  ASSERT_GE(tokens.size(), 12u);
  EXPECT_TRUE(tokens[0].IsWord("select"));
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "a_1");
  // @p becomes a parameter token without the '@'.
  bool saw_param = false;
  for (const auto& t : tokens) {
    if (t.type == TokenType::kParameter) {
      EXPECT_EQ(t.text, "p");
      saw_param = true;
    }
  }
  EXPECT_TRUE(saw_param);
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Lex("a <= b >= c != d <> e").value();
  int ops = 0;
  for (const auto& t : tokens) {
    if (t.type == TokenType::kSymbol && t.text.size() == 2) ++ops;
  }
  EXPECT_EQ(ops, 4);
}

TEST(LexerTest, StringsAndComments) {
  auto tokens = Lex("-- a comment\n'hello world' 42").value();
  ASSERT_EQ(tokens.size(), 3u);  // string, number, end
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello world");
  EXPECT_EQ(tokens[1].type, TokenType::kNumber);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("'unterminated").ok());
  EXPECT_FALSE(Lex("a @ b").ok());
  EXPECT_FALSE(Lex("a ? b").ok());
}

TEST(LexerTest, TracksLineNumbers) {
  auto tokens = Lex("a\nb\nc").value();
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 3);
}

// ---------------------------------------------------------------- Parser --

TEST(ParserTest, SimpleSelect) {
  auto st = ParseStatement("SELECT A, B FROM T WHERE A = @x AND B > 3").value();
  EXPECT_EQ(st.kind, StatementKind::kSelect);
  ASSERT_EQ(st.select_items.size(), 2u);
  EXPECT_EQ(st.select_items[0].expr.column.column, "A");
  ASSERT_EQ(st.from.size(), 1u);
  EXPECT_EQ(st.from[0].table, "T");
  ASSERT_EQ(st.where.size(), 2u);
  EXPECT_EQ(st.where[0].op, CompareOp::kEq);
  EXPECT_EQ(st.where[0].rhs.kind, ExprKind::kParameter);
  EXPECT_EQ(st.where[1].op, CompareOp::kGt);
}

TEST(ParserTest, JoinWithOn) {
  auto st = ParseStatement(
                "SELECT X FROM A JOIN B ON A_ID = B_A_ID JOIN C ON C_B = B_ID "
                "WHERE X = 1")
                .value();
  ASSERT_EQ(st.from.size(), 3u);
  EXPECT_EQ(st.from[1].table, "B");
  ASSERT_EQ(st.from[1].join_on.size(), 1u);
  EXPECT_EQ(st.from[1].join_on[0].lhs.column.column, "A_ID");
  EXPECT_EQ(st.from[2].join_on[0].rhs.column.column, "B_ID");
}

TEST(ParserTest, SelectAssignment) {
  auto st = ParseStatement("SELECT @v = T_CA_ID FROM TRADE WHERE T_ID = @t").value();
  ASSERT_EQ(st.select_items.size(), 1u);
  ASSERT_TRUE(st.select_items[0].assign_to.has_value());
  EXPECT_EQ(*st.select_items[0].assign_to, "v");
  EXPECT_EQ(st.select_items[0].expr.column.column, "T_CA_ID");
}

TEST(ParserTest, Aggregates) {
  auto st = ParseStatement("SELECT SUM(HS_QTY), COUNT(*) FROM HOLDING_SUMMARY").value();
  EXPECT_EQ(st.select_items[0].expr.kind, ExprKind::kAggregate);
  EXPECT_EQ(st.select_items[0].expr.agg_func, "SUM");
  EXPECT_EQ(st.select_items[1].expr.agg_func, "COUNT");
  EXPECT_TRUE(st.select_items[1].expr.column.column.empty());
}

TEST(ParserTest, QualifiedColumns) {
  auto st = ParseStatement("SELECT T.A FROM T WHERE T.B = 1").value();
  EXPECT_EQ(st.select_items[0].expr.column.table, "T");
  EXPECT_EQ(st.select_items[0].expr.column.column, "A");
}

TEST(ParserTest, InPredicate) {
  auto st = ParseStatement("SELECT A FROM T WHERE B IN (@x, @y, 3)").value();
  ASSERT_EQ(st.where.size(), 1u);
  EXPECT_EQ(st.where[0].op, CompareOp::kIn);
  ASSERT_EQ(st.where[0].rhs_list.size(), 3u);
  EXPECT_EQ(st.where[0].rhs_list[0].kind, ExprKind::kParameter);
  EXPECT_EQ(st.where[0].rhs_list[2].kind, ExprKind::kLiteral);
}

TEST(ParserTest, InsertWithColumns) {
  auto st =
      ParseStatement("INSERT INTO T (A, B) VALUES (@a, 42)").value();
  EXPECT_EQ(st.kind, StatementKind::kInsert);
  EXPECT_EQ(st.insert_table, "T");
  ASSERT_EQ(st.insert_columns.size(), 2u);
  ASSERT_EQ(st.insert_values.size(), 2u);
  EXPECT_EQ(st.insert_values[0].kind, ExprKind::kParameter);
}

TEST(ParserTest, InsertWithoutColumns) {
  auto st = ParseStatement("INSERT INTO T VALUES (1, 2, 3)").value();
  EXPECT_TRUE(st.insert_columns.empty());
  EXPECT_EQ(st.insert_values.size(), 3u);
}

TEST(ParserTest, Update) {
  auto st =
      ParseStatement("UPDATE T SET A = @a, B = B + @delta WHERE C = @c").value();
  EXPECT_EQ(st.kind, StatementKind::kUpdate);
  EXPECT_EQ(st.update_table, "T");
  ASSERT_EQ(st.set_items.size(), 2u);
  EXPECT_EQ(st.set_items[0].first.column, "A");
  ASSERT_EQ(st.where.size(), 1u);
}

TEST(ParserTest, Delete) {
  auto st = ParseStatement("DELETE FROM T WHERE A = 1").value();
  EXPECT_EQ(st.kind, StatementKind::kDelete);
  ASSERT_EQ(st.from.size(), 1u);
  EXPECT_EQ(st.from[0].table, "T");
}

TEST(ParserTest, OrderByIsAcceptedAndIgnored) {
  auto st =
      ParseStatement("SELECT A FROM T WHERE B = 1 ORDER BY A DESC, C").value();
  EXPECT_EQ(st.kind, StatementKind::kSelect);
}

TEST(ParserTest, ProcedureHeader) {
  auto proc = ParseProcedure(
                  "PROCEDURE Foo(@a bigint, @b) { SELECT X FROM T WHERE X = @a; }")
                  .value();
  EXPECT_EQ(proc.name, "Foo");
  ASSERT_EQ(proc.parameters.size(), 2u);
  EXPECT_EQ(proc.parameters[0], "a");
  EXPECT_EQ(proc.statements.size(), 1u);
}

TEST(ParserTest, MultipleProcedures) {
  auto procs = ParseProcedures(
                   "PROCEDURE A() { SELECT X FROM T; }"
                   "PROCEDURE B(@p) { DELETE FROM T WHERE X = @p; }")
                   .value();
  ASSERT_EQ(procs.size(), 2u);
  EXPECT_EQ(procs[0].name, "A");
  EXPECT_EQ(procs[1].name, "B");
}

TEST(ParserTest, CustInfoFromPaperParses) {
  auto proc = ParseProcedure(jecb::testing::CustInfoSql());
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  EXPECT_EQ(proc.value().name, "CustInfo");
  EXPECT_EQ(proc.value().statements.size(), 2u);
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto bad = ParseProcedure("PROCEDURE P() {\n SELECT FROM T; }");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(ParserTest, UnterminatedBodyFails) {
  EXPECT_FALSE(ParseProcedure("PROCEDURE P() { SELECT A FROM T;").ok());
}

TEST(ParserTest, MissingKeywordFails) {
  EXPECT_FALSE(ParseStatement("SELECT A T").ok());
  EXPECT_FALSE(ParseStatement("INSERT T VALUES (1)").ok());
  EXPECT_FALSE(ParseStatement("UPDATE T A = 1").ok());
}

}  // namespace
}  // namespace jecb::sql
