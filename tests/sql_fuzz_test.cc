// Robustness sweep for the SQL front end: mutated and truncated inputs must
// produce Status errors (or parse), never crash or hang.
#include <gtest/gtest.h>

#include <random>

#include "sql/analyzer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace jecb::sql {
namespace {

const char* const kSeedTexts[] = {
    R"SQL(PROCEDURE P(@a, @b) {
  SELECT SUM(HS_QTY) FROM HOLDING_SUMMARY JOIN CUSTOMER_ACCOUNT ON HS_CA_ID = CA_ID
    WHERE CA_C_ID = @a;
  INSERT INTO TRADE (T_ID, T_CA_ID, T_QTY) VALUES (@b, @a, 3);
  UPDATE TRADE SET T_QTY = @b WHERE T_ID = @b;
  DELETE FROM TRADE WHERE T_QTY IN (@a, @b, 7);
})SQL",
    "PROCEDURE Q() { SELECT * FROM TRADE ORDER BY T_ID DESC; }",
    "PROCEDURE R(@x bigint) { SELECT @v = T_CA_ID FROM TRADE WHERE T_ID = @x; }",
};

TEST(SqlFuzzTest, TruncationsNeverCrash) {
  for (const char* seed : kSeedTexts) {
    std::string text(seed);
    for (size_t len = 0; len <= text.size(); ++len) {
      auto result = ParseProcedures(text.substr(0, len));
      // Either parses or reports an error; we only require no crash and a
      // real status object.
      if (!result.ok()) {
        EXPECT_FALSE(result.status().message().empty());
      }
    }
  }
}

TEST(SqlFuzzTest, RandomByteMutationsNeverCrash) {
  std::mt19937_64 rng(20140622);
  const char kAlphabet[] = " \n\t@(){};,.*=<>'abzAZ_019-";
  for (const char* seed : kSeedTexts) {
    for (int trial = 0; trial < 400; ++trial) {
      std::string text(seed);
      int mutations = 1 + static_cast<int>(rng() % 6);
      for (int m = 0; m < mutations; ++m) {
        size_t pos = rng() % text.size();
        switch (rng() % 3) {
          case 0:  // replace
            text[pos] = kAlphabet[rng() % (sizeof(kAlphabet) - 1)];
            break;
          case 1:  // delete
            text.erase(pos, 1);
            break;
          default:  // insert
            text.insert(pos, 1, kAlphabet[rng() % (sizeof(kAlphabet) - 1)]);
        }
        if (text.empty()) break;
      }
      auto result = ParseProcedures(text);
      (void)result;  // outcome irrelevant; must not crash
    }
  }
}

TEST(SqlFuzzTest, TokenShufflesNeverCrashAnalyzer) {
  // Parseable-but-weird inputs must fail analysis gracefully too.
  Schema schema = jecb::testing::MakeCustInfoSchema();
  std::mt19937_64 rng(7);
  const std::vector<std::string> fragments = {
      "SELECT", "T_QTY", "FROM", "TRADE", "WHERE", "T_ID", "=", "@x", "JOIN",
      "CUSTOMER_ACCOUNT", "ON", "CA_ID", "AND", "IN", "(", ")", ",", "HS_QTY"};
  for (int trial = 0; trial < 600; ++trial) {
    std::string body;
    int len = 3 + static_cast<int>(rng() % 12);
    for (int i = 0; i < len; ++i) {
      body += fragments[rng() % fragments.size()] + " ";
    }
    std::string text = "PROCEDURE F(@x) { " + body + "; }";
    auto proc = ParseProcedure(text);
    if (!proc.ok()) continue;
    auto info = AnalyzeProcedure(schema, proc.value());
    (void)info;  // must not crash
  }
}

TEST(SqlFuzzTest, DeeplyNestedInputBounded) {
  // Long chains of JOINs and predicates parse in linear time, no recursion
  // blowup (the grammar is iterative).
  std::string text = "PROCEDURE Big(@x) { SELECT T_QTY FROM TRADE";
  for (int i = 0; i < 500; ++i) {
    text += " JOIN CUSTOMER_ACCOUNT ON T_CA_ID = CA_ID";
  }
  text += " WHERE T_ID = @x";
  for (int i = 0; i < 500; ++i) {
    text += " AND T_QTY = " + std::to_string(i);
  }
  text += "; }";
  auto result = ParseProcedure(text);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().statements[0].from.size(), 501u);
  EXPECT_EQ(result.value().statements[0].where.size(), 501u);
}

}  // namespace
}  // namespace jecb::sql
