#include <gtest/gtest.h>

#include "test_util.h"
#include "trace/trace.h"

namespace jecb {
namespace {

TEST(TraceTest, InternClassReusesIds) {
  Trace t;
  uint32_t a = t.InternClass("A");
  uint32_t b = t.InternClass("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.InternClass("A"), a);
  EXPECT_EQ(t.num_classes(), 2u);
  EXPECT_EQ(t.class_name(b), "B");
  EXPECT_EQ(t.FindClass("B").value(), b);
  EXPECT_FALSE(t.FindClass("C").ok());
}

Trace MakeTwoClassTrace(int n_a, int n_b) {
  Trace t;
  uint32_t a = t.InternClass("A");
  uint32_t b = t.InternClass("B");
  for (int i = 0; i < n_a; ++i) {
    Transaction txn;
    txn.class_id = a;
    txn.Read({0, static_cast<RowId>(i)});
    t.Add(std::move(txn));
  }
  for (int i = 0; i < n_b; ++i) {
    Transaction txn;
    txn.class_id = b;
    txn.Write({1, static_cast<RowId>(i)});
    t.Add(std::move(txn));
  }
  return t;
}

TEST(TraceTest, FilterClassKeepsNamesAligned) {
  Trace t = MakeTwoClassTrace(5, 3);
  Trace only_b = t.FilterClass(t.FindClass("B").value());
  EXPECT_EQ(only_b.size(), 3u);
  EXPECT_EQ(only_b.num_classes(), 2u);  // names carried over
  for (const auto& txn : only_b.transactions()) {
    EXPECT_EQ(only_b.class_name(txn.class_id), "B");
  }
}

TEST(TraceTest, SplitTrainTestFractions) {
  Trace t = MakeTwoClassTrace(700, 300);
  auto [train, test] = t.SplitTrainTest(0.3);
  EXPECT_EQ(train.size() + test.size(), 1000u);
  EXPECT_NEAR(static_cast<double>(test.size()), 300.0, 5.0);
}

TEST(TraceTest, SplitZeroFraction) {
  Trace t = MakeTwoClassTrace(10, 0);
  auto [train, test] = t.SplitTrainTest(0.0);
  EXPECT_EQ(train.size(), 10u);
  EXPECT_TRUE(test.empty());
}

TEST(TraceTest, SplitFullFraction) {
  Trace t = MakeTwoClassTrace(7, 3);
  auto [train, test] = t.SplitTrainTest(1.0);
  EXPECT_TRUE(train.empty());
  EXPECT_EQ(test.size(), 10u);
  // Class names carry over to both halves even when one is empty.
  EXPECT_EQ(train.num_classes(), 2u);
  EXPECT_EQ(test.num_classes(), 2u);
  EXPECT_EQ(test.FindClass("B").value(), t.FindClass("B").value());
}

TEST(TraceTest, FindClassWorksAfterFilterAndSplit) {
  // The name -> id index must survive CloneEmpty (FilterClass/Split both
  // clone); a stale index would resolve names to wrong or missing ids.
  Trace t = MakeTwoClassTrace(4, 4);
  Trace only_a = t.FilterClass(t.FindClass("A").value());
  EXPECT_EQ(only_a.FindClass("A").value(), t.FindClass("A").value());
  EXPECT_EQ(only_a.FindClass("B").value(), t.FindClass("B").value());
  EXPECT_FALSE(only_a.FindClass("C").ok());
  // Interning an existing name in the clone reuses the carried-over id.
  EXPECT_EQ(only_a.InternClass("B"), t.FindClass("B").value());
}

TEST(TraceTest, InternManyClassesResolvesEveryName) {
  Trace t;
  std::vector<uint32_t> ids;
  for (int i = 0; i < 200; ++i) ids.push_back(t.InternClass("Class" + std::to_string(i)));
  EXPECT_EQ(t.num_classes(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(t.FindClass("Class" + std::to_string(i)).value(), ids[i]);
    EXPECT_EQ(t.InternClass("Class" + std::to_string(i)), ids[i]);
  }
}

TEST(TraceTest, HeadTruncates) {
  Trace t = MakeTwoClassTrace(10, 10);
  EXPECT_EQ(t.Head(7).size(), 7u);
  EXPECT_EQ(t.Head(100).size(), 20u);
  EXPECT_EQ(t.Head(0).size(), 0u);
}

class ClassifyTest : public ::testing::Test {
 protected:
  ClassifyTest() : fixture_(testing::MakeCustInfoDb()) {}
  testing::CustInfoDb fixture_;
};

TEST_F(ClassifyTest, ReadOnlyTablesDetected) {
  const Schema& schema = fixture_.db->schema();
  Trace trace = testing::MakeCustInfoTrace(fixture_);
  auto classes = ClassifyTables(schema, trace);
  // CustInfo only reads: everything it touches is read-only; CUSTOMER is
  // untouched and also read-only (no writes).
  for (size_t i = 0; i < classes.size(); ++i) {
    EXPECT_EQ(classes[i], AccessClass::kReadOnly) << schema.table(i).name;
  }
}

TEST_F(ClassifyTest, HeavyWriterStaysPartitioned) {
  const Schema& schema = fixture_.db->schema();
  Trace trace;
  uint32_t cls = trace.InternClass("W");
  for (int i = 0; i < 100; ++i) {
    Transaction txn;
    txn.class_id = cls;
    txn.Write(fixture_.trades[i % fixture_.trades.size()]);
    trace.Add(std::move(txn));
  }
  auto classes = ClassifyTables(schema, trace);
  TableId trade = schema.FindTable("TRADE").value();
  EXPECT_EQ(classes[trade], AccessClass::kPartitioned);
}

TEST_F(ClassifyTest, RareWriterBecomesReadMostly) {
  const Schema& schema = fixture_.db->schema();
  Trace trace;
  uint32_t reader = trace.InternClass("R");
  uint32_t writer = trace.InternClass("W");
  for (int i = 0; i < 999; ++i) {
    Transaction txn;
    txn.class_id = reader;
    txn.Read(fixture_.trades[0]);
    trace.Add(std::move(txn));
  }
  Transaction txn;
  txn.class_id = writer;
  txn.Write(fixture_.trades[0]);
  trace.Add(std::move(txn));

  auto classes = ClassifyTables(schema, trace);
  TableId trade = schema.FindTable("TRADE").value();
  EXPECT_EQ(classes[trade], AccessClass::kReadMostly);
}

TEST_F(ClassifyTest, ThresholdIsConfigurable) {
  const Schema& schema = fixture_.db->schema();
  Trace trace;
  uint32_t writer = trace.InternClass("W");
  uint32_t reader = trace.InternClass("R");
  for (int i = 0; i < 100; ++i) {
    Transaction txn;
    txn.class_id = (i < 5) ? writer : reader;
    if (i < 5) {
      txn.Write(fixture_.trades[0]);
    } else {
      txn.Read(fixture_.trades[0]);
    }
    trace.Add(std::move(txn));
  }
  TableId trade = schema.FindTable("TRADE").value();
  ClassifyOptions strict;
  strict.read_mostly_max_write_txn_fraction = 0.01;
  EXPECT_EQ(ClassifyTables(schema, trace, strict)[trade], AccessClass::kPartitioned);
  ClassifyOptions loose;
  loose.read_mostly_max_write_txn_fraction = 0.10;
  EXPECT_EQ(ClassifyTables(schema, trace, loose)[trade], AccessClass::kReadMostly);
}

TEST_F(ClassifyTest, ApplyClassificationStampsSchema) {
  Schema schema = fixture_.db->schema();
  std::vector<AccessClass> classes(schema.num_tables(), AccessClass::kReadOnly);
  classes[0] = AccessClass::kPartitioned;
  ApplyClassification(&schema, classes);
  EXPECT_EQ(schema.table(0).access_class, AccessClass::kPartitioned);
  EXPECT_EQ(schema.table(1).access_class, AccessClass::kReadOnly);
}

TEST_F(ClassifyTest, ComputeTableStatsCountsReadsWritesAndWriters) {
  const Schema& schema = fixture_.db->schema();
  Trace trace;
  uint32_t cls = trace.InternClass("X");
  Transaction txn;
  txn.class_id = cls;
  txn.Read(fixture_.trades[0]);
  txn.Write(fixture_.trades[1]);
  txn.Write(fixture_.trades[2]);
  trace.Add(std::move(txn));
  auto stats = ComputeTableStats(schema, trace);
  TableId trade = schema.FindTable("TRADE").value();
  EXPECT_EQ(stats[trade].reads, 1u);
  EXPECT_EQ(stats[trade].writes, 2u);
  EXPECT_EQ(stats[trade].txns_writing, 1u);  // one txn despite two writes
}

}  // namespace
}  // namespace jecb
