#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/string_util.h"
#include "sql/analyzer.h"
#include "workloads/auctionmark.h"
#include "workloads/seats.h"
#include "workloads/synthetic.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"
#include "workloads/tpce.h"

namespace jecb {
namespace {

std::vector<std::unique_ptr<Workload>> AllWorkloads() {
  std::vector<std::unique_ptr<Workload>> out;
  TpccConfig tpcc;
  tpcc.warehouses = 4;
  out.push_back(std::make_unique<TpccWorkload>(tpcc));
  TatpConfig tatp;
  tatp.subscribers = 300;
  out.push_back(std::make_unique<TatpWorkload>(tatp));
  SeatsConfig seats;
  seats.customers = 200;
  out.push_back(std::make_unique<SeatsWorkload>(seats));
  AuctionMarkConfig am;
  am.users = 200;
  out.push_back(std::make_unique<AuctionMarkWorkload>(am));
  TpceConfig tpce;
  tpce.customers = 80;
  out.push_back(std::make_unique<TpceWorkload>(tpce));
  SyntheticConfig syn;
  syn.parents = 100;
  syn.groups = 100;
  out.push_back(std::make_unique<SyntheticWorkload>(syn));
  return out;
}

// Property tests that must hold for EVERY workload generator.
class WorkloadPropertyTest : public ::testing::TestWithParam<size_t> {
 protected:
  WorkloadBundle Make(size_t txns = 800, uint64_t seed = 7) {
    return AllWorkloads()[GetParam()]->Make(txns, seed);
  }
};

TEST_P(WorkloadPropertyTest, GeneratesRequestedTransactionCount) {
  WorkloadBundle b = Make(800);
  EXPECT_EQ(b.trace.size(), 800u);
}

TEST_P(WorkloadPropertyTest, DeterministicForSeed) {
  WorkloadBundle a = Make(200, 42);
  WorkloadBundle b = Make(200, 42);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    const Transaction& ta = a.trace.transactions()[i];
    const Transaction& tb = b.trace.transactions()[i];
    ASSERT_EQ(ta.class_id, tb.class_id) << "txn " << i;
    ASSERT_EQ(ta.accesses.size(), tb.accesses.size()) << "txn " << i;
    for (size_t j = 0; j < ta.accesses.size(); ++j) {
      EXPECT_EQ(ta.accesses[j].tuple, tb.accesses[j].tuple);
      EXPECT_EQ(ta.accesses[j].write, tb.accesses[j].write);
    }
  }
  EXPECT_EQ(a.db->TotalRows(), b.db->TotalRows());
}

TEST_P(WorkloadPropertyTest, ReferentialIntegrityOfPopulatedData) {
  WorkloadBundle b = Make(600);
  const Schema& schema = b.db->schema();
  for (const ForeignKey& fk : schema.foreign_keys()) {
    const TableData& child = b.db->table_data(fk.table);
    for (RowId r = 0; r < child.num_rows(); ++r) {
      ASSERT_TRUE(b.db->FollowForeignKey(fk, TupleId{fk.table, r}).ok())
          << schema.table(fk.table).name << " row " << r << " dangling";
    }
  }
}

TEST_P(WorkloadPropertyTest, TraceAccessesValidTuples) {
  WorkloadBundle b = Make(600);
  for (const Transaction& txn : b.trace.transactions()) {
    EXPECT_FALSE(txn.accesses.empty());
    for (const Access& a : txn.accesses) {
      ASSERT_LT(a.tuple.table, b.db->schema().num_tables());
      ASSERT_LT(a.tuple.row, b.db->table_data(a.tuple.table).num_rows());
    }
  }
}

TEST_P(WorkloadPropertyTest, EveryClassHasAProcedure) {
  WorkloadBundle b = Make(600);
  for (const std::string& cls : b.trace.class_names()) {
    bool found = false;
    for (const auto& p : b.procedures) {
      if (EqualsIgnoreCase(p.name, cls)) found = true;
    }
    EXPECT_TRUE(found) << "class " << cls << " has no stored procedure";
  }
}

TEST_P(WorkloadPropertyTest, ProceduresAnalyzeCleanly) {
  WorkloadBundle b = Make(50);
  for (const auto& proc : b.procedures) {
    auto info = sql::AnalyzeProcedure(b.db->schema(), proc);
    ASSERT_TRUE(info.ok()) << proc.name << ": " << info.status().ToString();
    EXPECT_FALSE(info.value().AllTables().empty()) << proc.name;
  }
}

TEST_P(WorkloadPropertyTest, AllClassesAppearInLongTraces) {
  WorkloadBundle b = Make(4000);
  std::set<uint32_t> seen;
  for (const Transaction& txn : b.trace.transactions()) seen.insert(txn.class_id);
  EXPECT_EQ(seen.size(), b.trace.num_classes());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadPropertyTest,
                         ::testing::Range<size_t>(0, 6));

// ------------------------------------------------------- benchmark-specific

TEST(TpccWorkloadTest, MixRoughlyMatchesSpec) {
  TpccConfig cfg;
  cfg.warehouses = 4;
  WorkloadBundle b = TpccWorkload(cfg).Make(10000, 3);
  std::vector<int> counts(b.trace.num_classes(), 0);
  for (const auto& txn : b.trace.transactions()) ++counts[txn.class_id];
  uint32_t no = b.trace.FindClass("NewOrder").value();
  uint32_t pay = b.trace.FindClass("Payment").value();
  EXPECT_NEAR(counts[no] / 10000.0, 0.45, 0.03);
  EXPECT_NEAR(counts[pay] / 10000.0, 0.43, 0.03);
}

TEST(TpccWorkloadTest, RemotePaymentFractionRespected) {
  TpccConfig cfg;
  cfg.warehouses = 4;
  cfg.remote_payment_prob = 0.0;
  cfg.remote_order_line_prob = 0.0;
  WorkloadBundle b = TpccWorkload(cfg).Make(4000, 3);
  // With no remote accesses, every transaction touches one warehouse: the
  // w-column of every accessed partitioned tuple is constant per txn.
  const Schema& s = b.db->schema();
  TableId item = s.FindTable("ITEM").value();
  TableId hist = s.FindTable("HISTORY").value();
  for (const auto& txn : b.trace.transactions()) {
    std::set<int64_t> warehouses;
    for (const Access& a : txn.accesses) {
      if (a.tuple.table == item || a.tuple.table == hist) continue;
      warehouses.insert(b.db->GetValue(a.tuple, 0).AsInt());
    }
    EXPECT_LE(warehouses.size(), 1u);
  }
}

TEST(TpceWorkloadTest, TableCountMatchesSpec) {
  WorkloadBundle b = TpceWorkload(TpceConfig{.customers = 40}).Make(50, 1);
  EXPECT_EQ(b.db->schema().num_tables(), 33u);
  EXPECT_GE(b.db->schema().foreign_keys().size(), 40u);
  EXPECT_EQ(b.procedures.size(), 15u);
}

TEST(TpceWorkloadTest, PaperHorticultureSolutionConstructs) {
  WorkloadBundle b = TpceWorkload(TpceConfig{.customers = 40}).Make(50, 1);
  DatabaseSolution hc = HorticulturePaperTpceSolution(*b.db, 8);
  const Schema& s = b.db->schema();
  // TRADE partitioned by T_CA_ID; CUSTOMER_ACCOUNT and BROKER replicated.
  auto* trade = hc.Get(s.FindTable("TRADE").value());
  ASSERT_NE(trade, nullptr);
  EXPECT_NE(trade->Describe(s).find("T_CA_ID"), std::string::npos);
  EXPECT_EQ(hc.Get(s.FindTable("BROKER").value())->Describe(s), "replicated");
  EXPECT_EQ(hc.Get(s.FindTable("CUSTOMER_ACCOUNT").value())->Describe(s),
            "replicated");
}

TEST(TatpWorkloadTest, SingleSubscriberPerTransaction) {
  TatpConfig cfg;
  cfg.subscribers = 100;
  WorkloadBundle b = TatpWorkload(cfg).Make(2000, 9);
  for (const auto& txn : b.trace.transactions()) {
    std::set<int64_t> subs;
    for (const Access& a : txn.accesses) {
      subs.insert(b.db->GetValue(a.tuple, 0).AsInt());
    }
    EXPECT_LE(subs.size(), 1u);
  }
}

TEST(SyntheticWorkloadTest, MixFollowsConfig) {
  SyntheticConfig cfg;
  cfg.implicit_join_fraction = 0.8;
  WorkloadBundle b = SyntheticWorkload(cfg).Make(5000, 1);
  uint32_t implicit = b.trace.FindClass("ImplicitJoin").value();
  int count = 0;
  for (const auto& txn : b.trace.transactions()) {
    if (txn.class_id == implicit) ++count;
  }
  EXPECT_NEAR(count / 5000.0, 0.8, 0.03);
}

TEST(SyntheticWorkloadTest, GroupingColumnIsNotAForeignKey) {
  WorkloadBundle b = SyntheticWorkload().Make(10, 1);
  const Schema& s = b.db->schema();
  TableId grouping = s.FindTable("GROUPING").value();
  EXPECT_TRUE(s.ForeignKeysFrom(grouping).empty());
}

}  // namespace
}  // namespace jecb
