// Tests for the open-loop load generator (runtime/load_gen.h) and the CPU
// topology layer (common/topology.h, common/arena.h):
//   - arrival schedules are pure functions of (seed, txn id): identical at
//     any executor-thread count, monotone, and exactly i/target_tps for the
//     fixed-rate process;
//   - a sub-saturation open-loop replay (unbounded admission queue, so shed
//     is structurally zero) reproduces the closed-loop OutcomeSignature
//     bit-for-bit across 1/4/8 clients and the inproc/unix/tcp backends;
//   - the shed conservation invariant total = committed + failed + shed
//     holds under a saturating target with a tiny admission queue;
//   - pin_threads and arena_tuples are performance-only: signatures (and
//     the exchange payload digest) are identical with them on or off;
//   - the sysfs topology parser golden-tests against a fabricated tree and
//     degrades to the flat fallback when the tree is absent;
//   - WorkQueue::TryPush never blocks, and Arena allocation/Reset obey the
//     documented ownership rules.
// Runs under ThreadSanitizer (label: tsan).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/topology.h"
#include "dist/replay.h"
#include "partition/solution.h"
#include "runtime/load_gen.h"
#include "runtime/work_queue.h"
#include "workloads/tpcc.h"

namespace jecb {
namespace {

WorkloadBundle SmallTpcc(size_t txns = 300, uint64_t seed = 7) {
  TpccConfig cfg;
  cfg.warehouses = 4;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 20;
  cfg.initial_orders_per_district = 2;
  return TpccWorkload(cfg).Make(txns, seed);
}

DatabaseSolution MixedSolution(const Database& db, int32_t k) {
  DatabaseSolution s = MakeNaiveHashSolution(db, k);
  TableId wh = db.schema().FindTable("WAREHOUSE").value();
  s.Set(wh, std::make_shared<ReplicatedTable>());
  return s;
}

RuntimeOptions FastOptions(TransportKind transport, int clients) {
  RuntimeOptions opt;
  opt.transport = transport;
  opt.num_clients = clients;
  opt.local_work_us = 0;
  opt.round_trip_us = 0;
  opt.lock_hold_us = 0;
  return opt;
}

ReplayReport RunReplay(const WorkloadBundle& bundle,
                       const DatabaseSolution& solution,
                       const RuntimeOptions& opt, const std::string& label) {
  return Replay(*bundle.db, solution, bundle.trace, opt, label);
}

// ---------------------------------------------------------------------------
// Arrival schedule

TEST(ArrivalScheduleTest, FixedRateIsExactlyLinear) {
  RuntimeOptions opt;
  opt.target_tps = 2500.0;
  opt.arrival = ArrivalProcess::kFixedRate;
  std::vector<uint64_t> s = ComputeArrivalScheduleUs(opt, 100);
  ASSERT_EQ(s.size(), 100u);
  EXPECT_EQ(s[0], 0u);
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i], static_cast<uint64_t>(
                        std::llround(static_cast<double>(i) * 1e6 / 2500.0)));
  }
}

TEST(ArrivalScheduleTest, PoissonIsDeterministicMonotoneAndSeedSensitive) {
  RuntimeOptions opt;
  opt.target_tps = 10000.0;
  opt.arrival = ArrivalProcess::kPoisson;
  opt.faults.seed = 42;
  std::vector<uint64_t> a = ComputeArrivalScheduleUs(opt, 500);
  std::vector<uint64_t> b = ComputeArrivalScheduleUs(opt, 500);
  EXPECT_EQ(a, b) << "schedule must be a pure function of (seed, txn id)";
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));

  opt.faults.seed = 43;
  std::vector<uint64_t> c = ComputeArrivalScheduleUs(opt, 500);
  EXPECT_NE(a, c) << "different seeds must draw different gaps";

  // Mean inter-arrival should be in the right ballpark (1/λ = 100 us);
  // 500 draws keep the sample mean within a loose factor-of-2 band.
  double mean_gap = static_cast<double>(a.back()) / 499.0;
  EXPECT_GT(mean_gap, 50.0);
  EXPECT_LT(mean_gap, 200.0);
}

TEST(ArrivalScheduleTest, ClosedLoopAndEmptyTraceYieldNoSchedule) {
  RuntimeOptions opt;
  EXPECT_TRUE(ComputeArrivalScheduleUs(opt, 100).empty());
  opt.target_tps = 1000.0;
  EXPECT_TRUE(ComputeArrivalScheduleUs(opt, 0).empty());
}

TEST(ArrivalScheduleTest, ArrivalUniformIsInHalfOpenUnitInterval) {
  for (uint64_t i = 0; i < 1000; ++i) {
    double u = ArrivalUniform(7, i);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_EQ(u, ArrivalUniform(7, i));
  }
}

// ---------------------------------------------------------------------------
// Open-loop replay: determinism + conservation

// Sub-saturation contract: with an unbounded admission queue nothing sheds,
// so the executed set is the whole trace and the outcome signature matches
// the closed-loop replay — at every client count, on every backend.
TEST(OpenLoopReplayTest, SignatureMatchesClosedLoopAcrossClientsAndBackends) {
  WorkloadBundle bundle = SmallTpcc(200);
  DatabaseSolution solution = MixedSolution(*bundle.db, 2);

  ReplayReport closed = RunReplay(
      bundle, solution, FastOptions(TransportKind::kInProcess, 4), "closed");
  const uint64_t want = closed.OutcomeSignature();
  ASSERT_EQ(closed.committed + closed.failed, closed.total_txns);

  for (TransportKind transport :
       {TransportKind::kInProcess, TransportKind::kUnixSocket,
        TransportKind::kTcpSocket}) {
    for (int clients : {1, 4, 8}) {
      RuntimeOptions opt = FastOptions(transport, clients);
      opt.target_tps = 50000.0;  // far above capacity: stresses admission
      opt.arrival = ArrivalProcess::kPoisson;
      opt.admission_queue_depth = 0;  // unbounded: shed structurally zero
      ReplayReport open = RunReplay(bundle, solution, opt, "open");
      EXPECT_EQ(open.shed, 0u);
      EXPECT_EQ(open.OutcomeSignature(), want)
          << "transport=" << TransportKindName(transport)
          << " clients=" << clients;
      EXPECT_EQ(open.committed + open.failed, open.total_txns);
      EXPECT_GT(open.sojourn.count, 0u);
      EXPECT_EQ(open.sojourn.count, open.queue_wait.count);
      EXPECT_EQ(open.sojourn.count, open.service.count);
    }
  }
}

// Saturating target + tiny admission queue: arrivals outpace service, some
// are shed, and the ledger still balances exactly.
TEST(OpenLoopReplayTest, ShedConservationUnderSaturation) {
  WorkloadBundle bundle = SmallTpcc(400);
  DatabaseSolution solution = MixedSolution(*bundle.db, 2);

  RuntimeOptions opt = FastOptions(TransportKind::kInProcess, 1);
  opt.local_work_us = 200;  // slow service so the queue actually fills
  opt.target_tps = 1e6;     // arrivals are effectively instantaneous
  opt.arrival = ArrivalProcess::kFixedRate;
  opt.admission_queue_depth = 1;
  ReplayReport r = RunReplay(bundle, solution, opt, "saturated");

  EXPECT_GT(r.shed, 0u) << "a depth-1 queue at 1M tps must shed";
  EXPECT_EQ(r.committed + r.failed + r.shed, r.total_txns)
      << "conservation: every arrival commits, fails, or is shed";
  EXPECT_LT(r.committed, r.total_txns);
}

TEST(OpenLoopReplayTest, FixedRateAndPoissonBothReproduceClosedLoop) {
  WorkloadBundle bundle = SmallTpcc(150);
  DatabaseSolution solution = MixedSolution(*bundle.db, 2);
  ReplayReport closed = RunReplay(
      bundle, solution, FastOptions(TransportKind::kInProcess, 2), "closed");
  for (ArrivalProcess arrival :
       {ArrivalProcess::kFixedRate, ArrivalProcess::kPoisson}) {
    RuntimeOptions opt = FastOptions(TransportKind::kInProcess, 2);
    opt.target_tps = 20000.0;
    opt.arrival = arrival;
    opt.admission_queue_depth = 0;
    ReplayReport open = RunReplay(bundle, solution, opt, "open");
    EXPECT_EQ(open.OutcomeSignature(), closed.OutcomeSignature())
        << ArrivalProcessName(arrival);
  }
}

// ---------------------------------------------------------------------------
// Pinning + arenas are performance-only

TEST(TopologyRuntimeTest, PinningNeverChangesOutcomes) {
  WorkloadBundle bundle = SmallTpcc(200);
  DatabaseSolution solution = MixedSolution(*bundle.db, 2);
  uint64_t want = 0;
  for (TransportKind transport :
       {TransportKind::kInProcess, TransportKind::kUnixSocket}) {
    for (bool pin : {false, true}) {
      RuntimeOptions opt = FastOptions(transport, 4);
      opt.pin_threads = pin;
      ReplayReport r = RunReplay(bundle, solution, opt, "pin");
      if (want == 0) want = r.OutcomeSignature();
      EXPECT_EQ(r.OutcomeSignature(), want)
          << "transport=" << TransportKindName(transport) << " pin=" << pin;
      if (pin) {
        // Best-effort contract: when pinning succeeded the report says
        // where each shard landed; when the kernel refused, -1 is honest.
        for (const ShardReport& s : r.shards) {
          EXPECT_GE(s.pinned_cpu, -1);
        }
        EXPECT_TRUE(r.topology.pinned);
      }
    }
  }
}

TEST(TopologyRuntimeTest, ArenaStoreKeepsExchangeDigestAndSignature) {
  WorkloadBundle bundle = SmallTpcc(200);
  DatabaseSolution solution = MixedSolution(*bundle.db, 2);
  uint64_t want_sig = 0;
  uint64_t want_digest = 0;
  bool first = true;
  for (TransportKind transport :
       {TransportKind::kInProcess, TransportKind::kUnixSocket}) {
    for (bool arena : {true, false}) {
      RuntimeOptions opt = FastOptions(transport, 4);
      opt.arena_tuples = arena;
      ReplayReport r = RunReplay(bundle, solution, opt, "arena");
      if (first) {
        want_sig = r.OutcomeSignature();
        want_digest = r.exchange_digest;
        first = false;
        EXPECT_GT(r.exchange_txns, 0u);
      }
      EXPECT_EQ(r.OutcomeSignature(), want_sig)
          << "transport=" << TransportKindName(transport)
          << " arena=" << arena;
      EXPECT_EQ(r.exchange_digest, want_digest)
          << "arena-backed rows must encode bit-identically";
    }
  }
}

// ---------------------------------------------------------------------------
// Topology detection

class FakeSysfs {
 public:
  FakeSysfs() {
    root_ = std::filesystem::temp_directory_path() /
            ("jecb_topo_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    cpu_root_ = (root_ / "cpu").string();
    node_root_ = (root_ / "node").string();
  }
  ~FakeSysfs() {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  void AddCpu(int cpu, int core, int package) {
    auto dir = std::filesystem::path(cpu_root_) /
               ("cpu" + std::to_string(cpu)) / "topology";
    std::filesystem::create_directories(dir);
    Write(dir / "core_id", std::to_string(core));
    Write(dir / "physical_package_id", std::to_string(package));
  }
  void SetPresent(const std::string& list) {
    std::filesystem::create_directories(cpu_root_);
    Write(std::filesystem::path(cpu_root_) / "present", list);
  }
  void AddNode(int node, const std::string& cpulist) {
    auto dir = std::filesystem::path(node_root_) / ("node" + std::to_string(node));
    std::filesystem::create_directories(dir);
    Write(dir / "cpulist", cpulist);
  }

  const std::string& cpu_root() const { return cpu_root_; }
  const std::string& node_root() const { return node_root_; }

 private:
  static void Write(const std::filesystem::path& p, const std::string& text) {
    std::ofstream out(p);
    out << text << "\n";
  }
  static int counter_;
  std::filesystem::path root_;
  std::string cpu_root_;
  std::string node_root_;
};

int FakeSysfs::counter_ = 0;

TEST(TopologyDetectTest, GoldenSmtDualSocketNuma) {
  // 8 logical cpus: package 0 holds cores 0/1 as (0,4) and (1,5); package 1
  // holds cores 0/1 as (2,6) and (3,7). NUMA node per package.
  FakeSysfs fs;
  fs.SetPresent("0-7");
  fs.AddCpu(0, 0, 0);
  fs.AddCpu(1, 1, 0);
  fs.AddCpu(2, 0, 1);
  fs.AddCpu(3, 1, 1);
  fs.AddCpu(4, 0, 0);
  fs.AddCpu(5, 1, 0);
  fs.AddCpu(6, 0, 1);
  fs.AddCpu(7, 1, 1);
  fs.AddNode(0, "0-1,4-5");
  fs.AddNode(1, "2-3,6-7");

  CpuTopology topo = DetectCpuTopologyFrom(fs.cpu_root(), fs.node_root());
  ASSERT_TRUE(topo.from_sysfs);
  EXPECT_EQ(topo.logical_cpus(), 8);
  EXPECT_EQ(topo.physical_cores, 4);
  EXPECT_EQ(topo.packages, 2);
  EXPECT_EQ(topo.numa_nodes, 2);
  EXPECT_TRUE(topo.smt);
  // cpus 0-3 own their cores; 4-7 are the SMT siblings.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(topo.cpus[i].smt_sibling) << i;
  for (int i = 4; i < 8; ++i) EXPECT_TRUE(topo.cpus[i].smt_sibling) << i;
  EXPECT_EQ(topo.cpus[2].node, 1);
  EXPECT_EQ(topo.cpus[5].node, 0);

  // Pin plan: all four physical cores get a worker before any SMT sibling,
  // packages alternating; extra workers wrap deterministically.
  std::vector<int32_t> plan = BuildPinPlan(topo, 8);
  ASSERT_EQ(plan.size(), 8u);
  std::set<int32_t> first_four(plan.begin(), plan.begin() + 4);
  EXPECT_EQ(first_four, (std::set<int32_t>{0, 1, 2, 3}));
  EXPECT_EQ(plan[0], 0);
  EXPECT_EQ(plan[1], 2) << "second worker goes to the other package";
  std::set<int32_t> all(plan.begin(), plan.end());
  EXPECT_EQ(all.size(), 8u) << "8 workers on 8 cpus: no sharing";

  std::vector<int32_t> wrapped = BuildPinPlan(topo, 10);
  ASSERT_EQ(wrapped.size(), 10u);
  EXPECT_EQ(wrapped[8], wrapped[0]);
  EXPECT_EQ(wrapped[9], wrapped[1]);
}

TEST(TopologyDetectTest, MissingSysfsFallsBackGracefully) {
  CpuTopology topo =
      DetectCpuTopologyFrom("/nonexistent/cpu", "/nonexistent/node");
  EXPECT_FALSE(topo.from_sysfs);
  EXPECT_GE(topo.logical_cpus(), 1);
  EXPECT_EQ(topo.numa_nodes, 1);
  EXPECT_FALSE(topo.smt);
  // The pin plan still exists — pinning just degrades to cpu-per-worker
  // modulo whatever the fallback saw.
  EXPECT_FALSE(BuildPinPlan(topo, 4).empty());
}

TEST(TopologyDetectTest, CpuDirScanWhenPresentFileMissing) {
  FakeSysfs fs;
  fs.AddCpu(0, 0, 0);
  fs.AddCpu(1, 1, 0);
  CpuTopology topo = DetectCpuTopologyFrom(fs.cpu_root(), fs.node_root());
  ASSERT_TRUE(topo.from_sysfs);
  EXPECT_EQ(topo.logical_cpus(), 2);
  EXPECT_EQ(topo.physical_cores, 2);
  EXPECT_FALSE(topo.smt);
  EXPECT_EQ(topo.numa_nodes, 1);  // no node tree: everything on node 0
}

TEST(ParseCpuListTest, RangesSinglesAndGarbage) {
  EXPECT_EQ(ParseCpuList("0-3,8,10-11"),
            (std::vector<int32_t>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(ParseCpuList("5"), (std::vector<int32_t>{5}));
  EXPECT_EQ(ParseCpuList("0-1\n"), (std::vector<int32_t>{0, 1}));
  EXPECT_TRUE(ParseCpuList("").empty());
  EXPECT_TRUE(ParseCpuList("banana").empty());
  EXPECT_TRUE(ParseCpuList("3-1").empty()) << "inverted range";
  EXPECT_TRUE(ParseCpuList("0-99999999").empty()) << "range bomb guard";
}

TEST(TopologyDetectTest, FingerprintIsWellFormedJson) {
  std::string fp = TopologyFingerprintJson();
  EXPECT_EQ(fp.front(), '{');
  EXPECT_EQ(fp.back(), '}');
  EXPECT_NE(fp.find("\"cpus\":"), std::string::npos);
  EXPECT_NE(fp.find("\"source\":"), std::string::npos);
}

TEST(TopologyDetectTest, ContextSwitchCountersAreMonotoneFacts) {
  ContextSwitchCounts a = ProcessContextSwitches();
  ContextSwitchCounts b = ProcessContextSwitches();
  EXPECT_GE(b.voluntary + b.involuntary, a.voluntary + a.involuntary);
}

// ---------------------------------------------------------------------------
// WorkQueue::TryPush

TEST(WorkQueueTryPushTest, NeverBlocksAtCapacityAndAfterClose) {
  WorkQueue<int> q;
  q.SetCapacity(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3)) << "full queue must refuse instantly";
  ASSERT_TRUE(q.Pop().has_value());
  EXPECT_TRUE(q.TryPush(3)) << "slot freed by Pop";
  q.Close();
  EXPECT_FALSE(q.TryPush(4)) << "closed queue refuses";
  // The two queued items still drain after Close.
  EXPECT_TRUE(q.Pop().has_value());
  EXPECT_TRUE(q.Pop().has_value());
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(WorkQueueTryPushTest, UnboundedTryPushAlwaysSucceeds) {
  WorkQueue<int> q;  // capacity 0 = unbounded
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(q.TryPush(i));
  q.Close();
  size_t drained = 0;
  while (q.Pop().has_value()) ++drained;
  EXPECT_EQ(drained, 1000u);
}

// ---------------------------------------------------------------------------
// Arena

TEST(ArenaTest, CopyStringRoundTripsAndPacks) {
  Arena arena(256);
  std::vector<std::string_view> views;
  std::vector<std::string> originals;
  for (int i = 0; i < 100; ++i) {
    originals.push_back("row-" + std::to_string(i) + std::string(i % 7, 'x'));
  }
  for (const std::string& s : originals) views.push_back(arena.CopyString(s));
  for (size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i], originals[i]) << i;
  }
  EXPECT_GT(arena.blocks(), 1u) << "100 rows must overflow a 256-byte block";
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(ArenaTest, ResetKeepsCapacityAndInvalidatesNothingItShould) {
  Arena arena(1024);
  arena.CopyString(std::string(400, 'a'));
  arena.CopyString(std::string(400, 'b'));
  const uint64_t reserved = arena.bytes_reserved();
  ASSERT_GT(arena.bytes_allocated(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved)
      << "Reset rewinds offsets but keeps the blocks";
  std::string_view v = arena.CopyString("after-reset");
  EXPECT_EQ(v, "after-reset");
}

TEST(ArenaTest, OversizedAllocationGetsContiguousBlock) {
  Arena arena(64);
  std::string big(10000, 'z');
  std::string_view v = arena.CopyString(big);
  EXPECT_EQ(v, big);
  EXPECT_EQ(arena.CopyString(""), std::string_view());
}

TEST(ArenaTest, AllocateRespectsAlignment) {
  Arena arena(128);
  arena.CopyString("x");  // misalign the bump pointer
  void* p = arena.Allocate(sizeof(uint64_t), alignof(uint64_t));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(uint64_t), 0u);
  *static_cast<uint64_t*>(p) = 0xDEADBEEF;  // must be writable
}

}  // namespace
}  // namespace jecb
