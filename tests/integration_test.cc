// Cross-module integration tests: trace serialization feeding the
// partitioners, routing agreeing with placement, bin packing over a real
// JECB solution, and cost models over real evaluations.
#include <gtest/gtest.h>

#include "jecb/jecb.h"
#include "partition/bin_packing.h"
#include "partition/cost_model.h"
#include "partition/evaluator.h"
#include "partition/router.h"
#include "schism/schism.h"
#include "trace/trace_io.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"

namespace jecb {
namespace {

TEST(Integration, PartitionFromSerializedTrace) {
  // Collector round trip: dump a TATP trace to the collector format, reload
  // it, and verify JECB reaches the same solution and cost.
  TatpConfig cfg;
  cfg.subscribers = 300;
  WorkloadBundle bundle = TatpWorkload(cfg).Make(3000, 4);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);

  std::string text = TraceToString(*bundle.db, train);
  auto reloaded = TraceFromString(text, *bundle.db);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  JecbOptions opt;
  opt.num_partitions = 4;
  auto direct = Jecb(opt).Partition(bundle.db.get(), bundle.procedures, train);
  auto via_file =
      Jecb(opt).Partition(bundle.db.get(), bundle.procedures, reloaded.value());
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_file.ok());
  EXPECT_EQ(direct.value().combiner_report.chosen_attr,
            via_file.value().combiner_report.chosen_attr);
  EXPECT_DOUBLE_EQ(Evaluate(*bundle.db, direct.value().solution, test).cost(),
                   Evaluate(*bundle.db, via_file.value().solution, test).cost());
}

TEST(Integration, RouterAgreesWithEvaluatorOnTpcc) {
  TpccConfig cfg;
  cfg.warehouses = 4;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(3000, 4);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);
  JecbOptions opt;
  opt.num_partitions = 4;
  auto res = Jecb(opt).Partition(bundle.db.get(), bundle.procedures, train);
  ASSERT_TRUE(res.ok());
  const DatabaseSolution& solution = res.value().solution;
  Router router(bundle.db.get(), &solution);

  // For every district tuple: the router's answer for its W_ID value must
  // contain the partition the evaluator assigns the tuple to.
  const Schema& s = bundle.db->schema();
  TableId district = s.FindTable("DISTRICT").value();
  ColumnRef d_w = s.ResolveQualified("DISTRICT.D_W_ID").value();
  for (RowId r = 0; r < bundle.db->table_data(district).num_rows(); ++r) {
    TupleId t{district, r};
    int32_t p = solution.PartitionOf(*bundle.db, t);
    auto routed = router.RouteValue(d_w, bundle.db->GetValue(t, 0));
    EXPECT_NE(std::find(routed.begin(), routed.end(), p), routed.end());
  }
}

TEST(Integration, PackedSolutionPreservesLocality) {
  TpccConfig cfg;
  cfg.warehouses = 16;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(4000, 4);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);
  JecbOptions opt;
  opt.num_partitions = 16;
  auto res = Jecb(opt).Partition(bundle.db.get(), bundle.procedures, train);
  ASSERT_TRUE(res.ok());
  EvalResult micro_ev = Evaluate(*bundle.db, res.value().solution, test);

  DatabaseSolution packed =
      PackSolution(*bundle.db, res.value().solution, train, 4, nullptr);
  EvalResult packed_ev = Evaluate(*bundle.db, packed, test);
  // Merging micro-partitions can only reduce (never increase) the number of
  // distributed transactions.
  EXPECT_LE(packed_ev.distributed_txns, micro_ev.distributed_txns);
  EXPECT_EQ(packed_ev.partition_load.size(), 4u);
}

TEST(Integration, CostModelsRankRealSolutionsConsistently) {
  TpccConfig cfg;
  cfg.warehouses = 4;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(3000, 4);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);
  JecbOptions opt;
  opt.num_partitions = 4;
  auto good = Jecb(opt).Partition(bundle.db.get(), bundle.procedures, train);
  ASSERT_TRUE(good.ok());
  // A deliberately bad solution: hash ORDER_LINE by quantity.
  DatabaseSolution bad = good.value().solution;
  const Schema& s = bundle.db->schema();
  JoinPath p;
  p.source_table = s.FindTable("ORDER_LINE").value();
  p.dest = s.ResolveQualified("ORDER_LINE.OL_QUANTITY").value();
  bad.Set(p.source_table, std::make_shared<JoinPathPartitioner>(
                              p, std::make_shared<HashMapping>(4)));

  EvalResult good_ev = Evaluate(*bundle.db, good.value().solution, test);
  EvalResult bad_ev = Evaluate(*bundle.db, bad, test);
  for (const CostModel* model :
       std::initializer_list<const CostModel*>{
           new DistributedFractionCost, new SitesTouchedCost,
           new WeightedRuntimeCost}) {
    EXPECT_LT(model->Cost(good_ev), model->Cost(bad_ev)) << model->name();
    delete model;
  }
}

TEST(Integration, SchismSolutionSurvivesDatabaseGrowth) {
  // New tuples inserted after partitioning are still placed (classifier
  // generalization), and evaluation does not crash on them.
  TpccConfig cfg;
  cfg.warehouses = 4;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(3000, 4);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);
  SchismOptions opt;
  opt.num_partitions = 4;
  auto res = Schism(opt).Partition(bundle.db.get(), train);
  ASSERT_TRUE(res.ok());
  TupleId fresh = bundle.db->MustInsert(
      "HISTORY", {int64_t(10000000), int64_t(0), int64_t(0), int64_t(0), int64_t(0),
                  int64_t(0), int64_t(12345), 1.0});
  int32_t p = res.value().solution.PartitionOf(*bundle.db, fresh);
  EXPECT_TRUE(p == kReplicated || (p >= 0 && p < 4));
}

}  // namespace
}  // namespace jecb
