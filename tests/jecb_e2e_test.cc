// End-to-end tests: run the full JECB pipeline (and the baselines) over the
// benchmark generators and check the paper's qualitative outcomes.
#include <gtest/gtest.h>

#include "horticulture/horticulture.h"
#include "jecb/jecb.h"
#include "partition/evaluator.h"
#include "schism/schism.h"
#include "workloads/auctionmark.h"
#include "workloads/seats.h"
#include "workloads/synthetic.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"
#include "workloads/tpce.h"

namespace jecb {
namespace {

struct E2eRun {
  WorkloadBundle bundle;
  JecbResult result;
  EvalResult eval;
  Trace test;
};

E2eRun RunJecb(const Workload& w, size_t txns, int32_t k = 8) {
  E2eRun run{w.Make(txns, 20260706), {DatabaseSolution(0, 0), {}, {}, {}, 0}, {}, {}};
  auto [train, test] = run.bundle.trace.SplitTrainTest(0.3);
  run.test = std::move(test);
  JecbOptions opt;
  opt.num_partitions = k;
  auto res = Jecb(opt).Partition(run.bundle.db.get(), run.bundle.procedures, train);
  CheckOk(res.status(), "RunJecb");
  run.result = std::move(res).value();
  run.eval = Evaluate(*run.bundle.db, run.result.solution, run.test);
  return run;
}

const ClassPartitioningResult& ClassNamed(const JecbResult& r, const std::string& name) {
  for (const auto& c : r.classes) {
    if (c.class_name == name) return c;
  }
  ADD_FAILURE() << "no class " << name;
  static ClassPartitioningResult empty;
  return empty;
}

TEST(JecbEndToEnd, TatpFullyPartitionableBySubscriber) {
  TatpConfig cfg;
  cfg.subscribers = 500;
  E2eRun run = RunJecb(TatpWorkload(cfg), 6000);
  EXPECT_NE(run.result.combiner_report.chosen_attr.find("S_ID"), std::string::npos);
  EXPECT_LT(run.eval.cost(), 0.01);
}

TEST(JecbEndToEnd, TpccPartitionedByWarehouse) {
  TpccConfig cfg;
  cfg.warehouses = 8;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 10;
  E2eRun run = RunJecb(TpccWorkload(cfg), 6000);
  EXPECT_NE(run.result.combiner_report.chosen_attr.find("W_ID"), std::string::npos)
      << run.result.combiner_report.chosen_attr;
  // Cost floor: remote payments (~15% * 43%) and remote order lines.
  EXPECT_LT(run.eval.cost(), 0.15);
  // OrderStatus / StockLevel / Delivery are fully local.
  uint32_t os = run.test.FindClass("OrderStatus").value();
  EXPECT_LT(run.eval.class_cost(os), 0.02);
}

TEST(JecbEndToEnd, TpccPerfectWithoutRemoteAccesses) {
  TpccConfig cfg;
  cfg.warehouses = 8;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 10;
  cfg.remote_payment_prob = 0.0;
  cfg.remote_order_line_prob = 0.0;
  E2eRun run = RunJecb(TpccWorkload(cfg), 6000);
  EXPECT_LT(run.eval.cost(), 0.01);
  // Without remote accesses NewOrder and Payment are strictly mapping
  // independent, not merely quasi.
  const auto& no = ClassNamed(run.result, "NewOrder");
  ASSERT_FALSE(no.total_solutions.empty());
  EXPECT_EQ(no.total_solutions[0].tier, SolutionTier::kMappingIndependent);
}

TEST(JecbEndToEnd, SeatsCompletelyPartitionableViaJoinExtension) {
  SeatsConfig cfg;
  cfg.customers = 500;
  E2eRun run = RunJecb(SeatsWorkload(cfg), 6000);
  EXPECT_NE(run.result.combiner_report.chosen_attr.find("C_ID"), std::string::npos);
  EXPECT_LT(run.eval.cost(), 0.01);
  // RESERVATION is partitioned through the two-hop path via FREQUENT_FLYER.
  const Schema& s = run.bundle.db->schema();
  const TablePartitioner* res = run.result.solution.Get(s.FindTable("RESERVATION").value());
  ASSERT_NE(res, nullptr);
  EXPECT_NE(res->Describe(s).find("FREQUENT_FLYER"), std::string::npos)
      << res->Describe(s);
}

TEST(JecbEndToEnd, AuctionMarkOnlyBiddingIsDistributed) {
  AuctionMarkConfig cfg;
  cfg.users = 400;
  E2eRun run = RunJecb(AuctionMarkWorkload(cfg), 6000);
  // NewBid's m-to-n buyer/seller structure has no total solution.
  EXPECT_TRUE(ClassNamed(run.result, "NewBid").total_solutions.empty());
  // Everything else is (nearly) local; total cost tracks NewBid's mix.
  uint32_t get_item = run.test.FindClass("GetItem").value();
  EXPECT_LT(run.eval.class_cost(get_item), 0.02);
  EXPECT_LT(run.eval.cost(), 0.30);
  EXPECT_GT(run.eval.cost(), 0.08);
}

TEST(JecbEndToEnd, TpceMatchesPaperStructure) {
  TpceConfig cfg;
  cfg.customers = 300;
  E2eRun run = RunJecb(TpceWorkload(cfg), 9000);
  const JecbResult& r = run.result;
  const Schema& s = run.bundle.db->schema();

  // Phase 1: exactly the paper's ten non-replicated tables.
  std::set<std::string> partitioned;
  for (const Table& t : s.tables()) {
    if (t.access_class == AccessClass::kPartitioned) partitioned.insert(t.name);
  }
  EXPECT_EQ(partitioned,
            (std::set<std::string>{"BROKER", "CUSTOMER_ACCOUNT", "TRADE",
                                   "TRADE_REQUEST", "TRADE_HISTORY", "SETTLEMENT",
                                   "CASH_TRANSACTION", "HOLDING", "HOLDING_HISTORY",
                                   "HOLDING_SUMMARY"}));
  EXPECT_EQ(s.table(s.FindTable("LAST_TRADE").value()).access_class,
            AccessClass::kReadMostly);

  // Phase 2 (paper Table 3): spot-check the structure.
  EXPECT_TRUE(ClassNamed(r, "BrokerVolume").total_solutions.empty());
  EXPECT_TRUE(ClassNamed(r, "MarketFeed").total_solutions.empty());
  EXPECT_TRUE(ClassNamed(r, "TradeLookupFrame1").total_solutions.empty());
  EXPECT_TRUE(ClassNamed(r, "SecurityDetail").read_only);
  EXPECT_FALSE(ClassNamed(r, "CustomerPosition").total_solutions.empty());
  EXPECT_FALSE(ClassNamed(r, "MarketWatch").total_solutions.empty());
  const auto& trade_order = ClassNamed(r, "TradeOrder");
  ASSERT_FALSE(trade_order.total_solutions.empty());
  // Total solution rooted at the broker granularity, with partials.
  EXPECT_EQ(s.table(trade_order.total_solutions[0].tree.root.table).name, "BROKER");
  EXPECT_FALSE(trade_order.partial_solutions.empty());

  // Phase 3: customer granularity wins; BROKER ends up replicated.
  bool customer_attr =
      r.combiner_report.chosen_attr.find("CA_C_ID") != std::string::npos ||
      r.combiner_report.chosen_attr.find("C_ID") != std::string::npos;
  EXPECT_TRUE(customer_attr) << r.combiner_report.chosen_attr;
  const TablePartitioner* broker = r.solution.Get(s.FindTable("BROKER").value());
  EXPECT_TRUE(broker == nullptr ||
              dynamic_cast<const ReplicatedTable*>(broker) != nullptr);

  // Overall cost in the paper's ballpark (21%).
  EXPECT_GT(run.eval.cost(), 0.12);
  EXPECT_LT(run.eval.cost(), 0.32);

  // Fig. 8 pattern: Customer-Position & friends local, Trade-Result bad.
  EXPECT_LT(run.eval.class_cost(run.test.FindClass("CustomerPosition").value()), 0.02);
  EXPECT_LT(run.eval.class_cost(run.test.FindClass("MarketWatch").value()), 0.02);
  EXPECT_LT(run.eval.class_cost(run.test.FindClass("TradeOrder").value()), 0.02);
  EXPECT_GT(run.eval.class_cost(run.test.FindClass("TradeResult").value()), 0.9);
  EXPECT_GT(run.eval.class_cost(run.test.FindClass("BrokerVolume").value()), 0.9);
}

TEST(JecbEndToEnd, SyntheticDegradesWithImplicitJoins) {
  SyntheticConfig low;
  low.implicit_join_fraction = 0.1;
  E2eRun a = RunJecb(SyntheticWorkload(low), 4000);
  SyntheticConfig high;
  high.implicit_join_fraction = 0.7;
  E2eRun b = RunJecb(SyntheticWorkload(high), 4000);
  EXPECT_LT(a.eval.cost(), 0.15);
  EXPECT_GT(b.eval.cost(), 0.5);
}

TEST(BaselinesEndToEnd, HorticultureFindsWarehousePartitioning) {
  TpccConfig cfg;
  cfg.warehouses = 8;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 10;
  WorkloadBundle b = TpccWorkload(cfg).Make(4000, 5);
  auto [train, test] = b.trace.SplitTrainTest(0.3);
  HorticultureOptions opt;
  auto res = Horticulture(opt).Partition(b.db.get(), train);
  ASSERT_TRUE(res.ok());
  EvalResult ev = Evaluate(*b.db, res.value().solution, test);
  EXPECT_LT(ev.cost(), 0.16);
}

TEST(BaselinesEndToEnd, SchismBeatsNaiveOnTpccButNotJecb) {
  TpccConfig cfg;
  cfg.warehouses = 8;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 10;
  WorkloadBundle b = TpccWorkload(cfg).Make(6000, 5);
  auto [train, test] = b.trace.SplitTrainTest(0.3);
  SchismOptions opt;
  auto res = Schism(opt).Partition(b.db.get(), train);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res.value().graph_nodes, 1000u);
  EXPECT_GT(res.value().explanation_accuracy, 0.95);
  EvalResult ev = Evaluate(*b.db, res.value().solution, test);
  EXPECT_LT(ev.cost(), 0.35);
}

TEST(BaselinesEndToEnd, SchismSuffersOnSeats) {
  // The paper's point: tuple-level learning degrades when the training
  // trace does not cover the key domain (SEATS/TATP discussion, Sec. 7.4) —
  // unseen customers' tuples are classified by extrapolated rules.
  SeatsConfig cfg;
  cfg.customers = 1500;
  WorkloadBundle b = SeatsWorkload(cfg).Make(2500, 5);
  auto [train, test] = b.trace.SplitTrainTest(0.3);
  auto schism = Schism(SchismOptions{}).Partition(b.db.get(), train);
  ASSERT_TRUE(schism.ok());
  EvalResult ev = Evaluate(*b.db, schism.value().solution, test);
  EXPECT_GT(ev.cost(), 0.10);
}

}  // namespace
}  // namespace jecb
