#include <gtest/gtest.h>

#include "storage/database.h"
#include "test_util.h"

namespace jecb {
namespace {

TEST(ValueTest, TypePredicatesAndAccessors) {
  Value i(int64_t{7});
  Value d(2.5);
  Value s(std::string("abc"));
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt(), 7);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 2.5);
  EXPECT_EQ(s.AsString(), "abc");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_NE(Value(1), Value("1"));
  EXPECT_LT(Value(1), Value(2));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(42).Hash(), Value(42).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_NE(Value(42).Hash(), Value(43).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(5).ToString(), "5");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(RowToString({Value(1), Value("a")}), "(1, a)");
}

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : fixture_(testing::MakeCustInfoDb()) {}
  testing::CustInfoDb fixture_;
  Database& db() { return *fixture_.db; }
};

TEST_F(DatabaseTest, InsertAndLookupByPk) {
  TableId trade = db().schema().FindTable("TRADE").value();
  const TableData& data = db().table_data(trade);
  EXPECT_EQ(data.num_rows(), 8u);
  auto row = data.LookupPk({Value(3)});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(data.At(row.value(), 1).AsInt(), 10);  // T_CA_ID of trade 3
}

TEST_F(DatabaseTest, DuplicatePrimaryKeyRejected) {
  TableId trade = db().schema().FindTable("TRADE").value();
  auto dup = db().Insert(trade, {Value(1), Value(1), Value(9)});
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(db().table_data(trade).num_rows(), 8u);
}

TEST_F(DatabaseTest, DuplicateAlternateKeyRejected) {
  TableId cust = db().schema().FindTable("CUSTOMER").value();
  // C_ID 3 is new but C_TAX_ID 901 belongs to customer 1.
  auto dup = db().Insert(cust, {Value(3), Value(901)});
  EXPECT_FALSE(dup.ok());
  // Rollback: inserting with fresh keys still works.
  EXPECT_TRUE(db().Insert(cust, {Value(3), Value(903)}).ok());
}

TEST_F(DatabaseTest, ArityMismatchRejected) {
  TableId trade = db().schema().FindTable("TRADE").value();
  EXPECT_FALSE(db().Insert(trade, {Value(99)}).ok());
}

TEST_F(DatabaseTest, CompositeKeyLookup) {
  TableId hs = db().schema().FindTable("HOLDING_SUMMARY").value();
  const TableData& data = db().table_data(hs);
  auto row = data.LookupPk({Value("BLS"), Value(8)});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(data.At(row.value(), 2).AsInt(), 9);
  EXPECT_FALSE(data.LookupPk({Value("BLS"), Value(7)}).ok());
}

TEST_F(DatabaseTest, LookupUniqueOnAlternateKey) {
  TableId cust = db().schema().FindTable("CUSTOMER").value();
  const Table& meta = db().schema().table(cust);
  std::vector<ColumnIdx> alt = {meta.FindColumn("C_TAX_ID").value()};
  auto row = db().table_data(cust).LookupUnique(alt, {Value(902)});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(db().table_data(cust).At(row.value(), 0).AsInt(), 2);
  // No index on a non-key column list.
  EXPECT_FALSE(db().table_data(cust).LookupUnique({1, 0}, {Value(1), Value(2)}).ok());
}

TEST_F(DatabaseTest, FollowForeignKey) {
  const Schema& schema = db().schema();
  TableId trade = schema.FindTable("TRADE").value();
  const ForeignKey* fk = schema.ForeignKeysFrom(trade)[0];
  // Trade 2 (row 1) has T_CA_ID = 7 -> account 7 owned by customer 2.
  auto parent = db().FollowForeignKey(*fk, fixture_.trades[1]);
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(db().GetValue(parent.value(), 0).AsInt(), 7);
  EXPECT_EQ(db().GetValue(parent.value(), 1).AsInt(), 2);
}

TEST_F(DatabaseTest, FollowForeignKeyWrongTable) {
  const Schema& schema = db().schema();
  TableId trade = schema.FindTable("TRADE").value();
  const ForeignKey* fk = schema.ForeignKeysFrom(trade)[0];
  EXPECT_FALSE(db().FollowForeignKey(*fk, fixture_.customers[0]).ok());
}

TEST_F(DatabaseTest, FollowDanglingForeignKey) {
  TableId trade = db().schema().FindTable("TRADE").value();
  TupleId dangling = db().Insert(trade, {Value(99), Value(404), Value(1)}).value();
  const ForeignKey* fk = db().schema().ForeignKeysFrom(trade)[0];
  auto parent = db().FollowForeignKey(*fk, dangling);
  EXPECT_FALSE(parent.ok());
  EXPECT_EQ(parent.status().code(), StatusCode::kNotFound);
}

TEST_F(DatabaseTest, TotalRows) {
  EXPECT_EQ(db().TotalRows(), 2u + 4u + 8u + 8u);
}

// Property: every foreign key of every stored tuple resolves in the fixture.
TEST_F(DatabaseTest, ReferentialIntegrityHolds) {
  const Schema& schema = db().schema();
  for (const ForeignKey& fk : schema.foreign_keys()) {
    const TableData& child = db().table_data(fk.table);
    for (RowId r = 0; r < child.num_rows(); ++r) {
      EXPECT_TRUE(db().FollowForeignKey(fk, TupleId{fk.table, r}).ok())
          << schema.table(fk.table).name << " row " << r;
    }
  }
}

}  // namespace
}  // namespace jecb
