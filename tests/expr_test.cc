#include <gtest/gtest.h>

#include <vector>

#include "expr/meter.h"
#include "workloads/registry.h"

namespace jecb {
namespace {

TEST(MeterTest, SnapshotsAreMonotone) {
  ResourceSnapshot a = TakeResourceSnapshot();
  // Burn a little CPU.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 20000000; ++i) sink += static_cast<uint64_t>(i) * 31;
  ResourceSnapshot b = TakeResourceSnapshot();
  EXPECT_GE(b.cpu_seconds, a.cpu_seconds);
  EXPECT_GE(b.peak_rss_kb, a.peak_rss_kb);
  EXPECT_GT(b.current_rss_kb, 0u);
}

TEST(MeterTest, MeterMeasuresAllocationDelta) {
  ResourceMeter meter;
  std::vector<std::vector<int64_t>> hog;
  for (int i = 0; i < 64; ++i) {
    hog.emplace_back(1 << 16, i);  // ~32 MB total
  }
  auto usage = meter.Stop();
  EXPECT_GE(usage.cpu_seconds, 0.0);
  EXPECT_GE(usage.rss_delta_mb, 16u);  // at least half materialized
  EXPECT_GE(usage.peak_rss_mb, usage.rss_delta_mb);
  // Keep the allocation alive until after Stop().
  EXPECT_EQ(hog.size(), 64u);
}

TEST(RegistryTest, AllNamesInstantiate) {
  for (const std::string& name : WorkloadNames()) {
    auto w = MakeWorkloadByName(name, 0.05);
    ASSERT_NE(w, nullptr) << name;
    WorkloadBundle bundle = w->Make(50, 1);
    EXPECT_EQ(bundle.trace.size(), 50u) << name;
    EXPECT_FALSE(bundle.procedures.empty()) << name;
  }
}

TEST(RegistryTest, NamesAreCaseInsensitiveAndAliased) {
  EXPECT_NE(MakeWorkloadByName("TPCC"), nullptr);
  EXPECT_NE(MakeWorkloadByName("tpc-e"), nullptr);
  EXPECT_EQ(MakeWorkloadByName("nope"), nullptr);
}

TEST(RegistryTest, ScaleChangesPopulation) {
  auto small = MakeWorkloadByName("tatp", 0.05)->Make(10, 1);
  auto large = MakeWorkloadByName("tatp", 0.5)->Make(10, 1);
  EXPECT_LT(small.db->TotalRows(), large.db->TotalRows());
}

}  // namespace
}  // namespace jecb
