// Failure-injection and edge-case tests for the public Jecb entry point.
#include <gtest/gtest.h>

#include "jecb/jecb.h"
#include "partition/evaluator.h"
#include "test_util.h"

namespace jecb {
namespace {

using jecb::testing::CustInfoDb;
using jecb::testing::MakeCustInfoDb;
using jecb::testing::MakeCustInfoTrace;

Trace WriteTrace(const CustInfoDb& fixture, int reps = 4) {
  Trace t = MakeCustInfoTrace(fixture, reps);
  for (auto& txn : t.mutable_transactions()) {
    for (auto& a : txn.accesses) a.write = true;
  }
  return t;
}

TEST(JecbRobustness, MissingProcedureIsAnError) {
  CustInfoDb fixture = MakeCustInfoDb();
  Trace trace = WriteTrace(fixture);
  auto res = Jecb().Partition(fixture.db.get(), {}, trace);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
  EXPECT_NE(res.status().message().find("CustInfo"), std::string::npos);
}

TEST(JecbRobustness, ProcedureReferencingUnknownColumnIsAnError) {
  CustInfoDb fixture = MakeCustInfoDb();
  Trace trace = WriteTrace(fixture);
  auto procs = sql::ParseProcedures(
                   "PROCEDURE CustInfo(@x) { SELECT NO_SUCH_COL FROM TRADE; }")
                   .value();
  auto res = Jecb().Partition(fixture.db.get(), procs, trace);
  EXPECT_FALSE(res.ok());
}

TEST(JecbRobustness, EmptyTraceProducesFullReplication) {
  CustInfoDb fixture = MakeCustInfoDb();
  Trace trace;
  auto res = Jecb().Partition(fixture.db.get(), {}, trace);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  for (size_t t = 0; t < fixture.db->schema().num_tables(); ++t) {
    EXPECT_EQ(res.value().solution.PartitionOf(*fixture.db,
                                               {static_cast<TableId>(t), 0}),
              kReplicated);
  }
}

TEST(JecbRobustness, SingleTransactionTrace) {
  CustInfoDb fixture = MakeCustInfoDb();
  Trace trace;
  uint32_t cls = trace.InternClass("CustInfo");
  Transaction txn;
  txn.class_id = cls;
  txn.Write(fixture.trades[0]);
  trace.Add(std::move(txn));
  auto procs = sql::ParseProcedures(jecb::testing::CustInfoSql()).value();
  auto res = Jecb().Partition(fixture.db.get(), procs, trace);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
}

TEST(JecbRobustness, ProcedureNameMatchingIsCaseInsensitive) {
  CustInfoDb fixture = MakeCustInfoDb();
  Trace trace;
  uint32_t cls = trace.InternClass("CUSTINFO");
  Transaction txn;
  txn.class_id = cls;
  txn.Write(fixture.trades[0]);
  trace.Add(std::move(txn));
  auto procs = sql::ParseProcedures(jecb::testing::CustInfoSql()).value();
  EXPECT_TRUE(Jecb().Partition(fixture.db.get(), procs, trace).ok());
}

// Sweep the partition count: the CustInfo workload must stay fully local at
// every k <= number of customers' granularity.
class JecbPartitionCountTest : public ::testing::TestWithParam<int32_t> {};

TEST_P(JecbPartitionCountTest, CustInfoStaysLocal) {
  CustInfoDb fixture = MakeCustInfoDb();
  Trace trace = WriteTrace(fixture, 6);
  auto procs = sql::ParseProcedures(jecb::testing::CustInfoSql()).value();
  JecbOptions opt;
  opt.num_partitions = GetParam();
  auto res = Jecb(opt).Partition(fixture.db.get(), procs, trace);
  ASSERT_TRUE(res.ok());
  EvalResult ev = Evaluate(*fixture.db, res.value().solution, trace);
  EXPECT_DOUBLE_EQ(ev.cost(), 0.0) << "k = " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Ks, JecbPartitionCountTest,
                         ::testing::Values(2, 3, 4, 8, 16, 100));

TEST(JecbRobustness, DisabledTiersFallBackGracefully) {
  CustInfoDb fixture = MakeCustInfoDb();
  Trace trace = WriteTrace(fixture, 6);
  // Poison every transaction so no MI tree exists, then disable every
  // fallback: the workload becomes non-partitionable and JECB must still
  // return a (replication) solution rather than fail.
  for (auto& txn : trace.mutable_transactions()) {
    txn.Write(fixture.trades[0]);
    txn.Write(fixture.trades[1]);
  }
  auto procs = sql::ParseProcedures(jecb::testing::CustInfoSql()).value();
  JecbOptions opt;
  opt.num_partitions = 2;
  opt.class_partitioner.quasi_tolerance = 0.0;
  opt.class_partitioner.enable_stats_fallback = false;
  opt.class_partitioner.enable_range_quasi = false;
  opt.class_partitioner.enable_partial_solutions = false;
  auto res = Jecb(opt).Partition(fixture.db.get(), procs, trace);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_NE(res.value().combiner_report.chosen_attr.find("replication"),
            std::string::npos);
}

TEST(JecbRobustness, ElapsedTimeIsPopulated) {
  CustInfoDb fixture = MakeCustInfoDb();
  Trace trace = WriteTrace(fixture);
  auto procs = sql::ParseProcedures(jecb::testing::CustInfoSql()).value();
  auto res = Jecb().Partition(fixture.db.get(), procs, trace);
  ASSERT_TRUE(res.ok());
  EXPECT_GE(res.value().elapsed_seconds, 0.0);
  EXPECT_LT(res.value().elapsed_seconds, 60.0);
}

TEST(JecbRobustness, TableClassesAlignWithSchema) {
  CustInfoDb fixture = MakeCustInfoDb();
  Trace trace = WriteTrace(fixture);
  auto procs = sql::ParseProcedures(jecb::testing::CustInfoSql()).value();
  auto res = Jecb().Partition(fixture.db.get(), procs, trace);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().table_classes.size(), fixture.db->schema().num_tables());
  for (size_t t = 0; t < res.value().table_classes.size(); ++t) {
    EXPECT_EQ(res.value().table_classes[t],
              fixture.db->schema().table(static_cast<TableId>(t)).access_class);
  }
}

TEST(JecbRobustness, ExtraProceduresWithoutTrafficAreIgnored) {
  CustInfoDb fixture = MakeCustInfoDb();
  Trace trace = WriteTrace(fixture);
  std::string sql = std::string(jecb::testing::CustInfoSql()) +
                    "PROCEDURE Unused(@x) { SELECT T_QTY FROM TRADE WHERE T_ID = @x; }";
  auto procs = sql::ParseProcedures(sql).value();
  auto res = Jecb().Partition(fixture.db.get(), procs, trace);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().classes.size(), 1u);
}

}  // namespace
}  // namespace jecb
