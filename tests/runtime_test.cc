// Tests for the partitioned execution runtime: shard materialization,
// latency histograms, and trace replay (conservation, determinism, and
// agreement between the measured distributed fraction and the static
// Definition 5/6 evaluator). Latency knobs are kept near zero so the tests
// maximize interleaving instead of wall time; tools/run_tsan.sh runs this
// binary under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "partition/evaluator.h"
#include "partition/router.h"
#include "runtime/metrics.h"
#include "dist/replay.h"
#include "runtime/sharded_database.h"
#include "workloads/tpcc.h"

namespace jecb {
namespace {

WorkloadBundle SmallTpcc(size_t txns = 600, uint64_t seed = 7) {
  TpccConfig cfg;
  cfg.warehouses = 4;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 20;
  cfg.initial_orders_per_district = 2;
  return TpccWorkload(cfg).Make(txns, seed);
}

RuntimeOptions FastOptions() {
  RuntimeOptions opt;
  opt.num_clients = 4;
  opt.local_work_us = 0;
  opt.round_trip_us = 0;
  opt.lock_hold_us = 0;
  return opt;
}

/// Hash everything except WAREHOUSE, which is replicated — so Payment's
/// warehouse write exercises the replicated-write (all-shards 2PC) path.
DatabaseSolution HashWithReplicatedWarehouse(const Database& db, int32_t k) {
  DatabaseSolution s = MakeNaiveHashSolution(db, k);
  TableId wh = db.schema().FindTable("WAREHOUSE").value();
  s.Set(wh, std::make_shared<ReplicatedTable>());
  return s;
}

TEST(RuntimeShardedDatabaseTest, PartitionedTuplesLiveOnExactlyOneShard) {
  WorkloadBundle b = SmallTpcc();
  DatabaseSolution solution = MakeNaiveHashSolution(*b.db, 4);
  ShardedDatabase sharded(*b.db, solution);

  ASSERT_EQ(sharded.num_shards(), 4);
  EXPECT_EQ(sharded.base_tuples(), b.db->TotalRows());
  EXPECT_EQ(sharded.replicated_tuples(), 0u);
  EXPECT_EQ(sharded.unknown_placements(), 0u);
  EXPECT_DOUBLE_EQ(sharded.ReplicationFactor(), 1.0);

  uint64_t stored = 0;
  for (int32_t s = 0; s < 4; ++s) stored += sharded.shard_tuples(s);
  EXPECT_EQ(stored, b.db->TotalRows());

  // Every tuple is on its primary shard and nowhere else.
  for (TableId t = 0; t < b.db->schema().num_tables(); ++t) {
    for (RowId r = 0; r < b.db->table_data(t).num_rows(); ++r) {
      TupleId id{t, r};
      int32_t home = sharded.PrimaryShardOf(id);
      ASSERT_GE(home, 0);
      ASSERT_LT(home, 4);
      for (int32_t s = 0; s < 4; ++s) {
        EXPECT_EQ(sharded.Contains(s, id), s == home);
      }
    }
  }
}

TEST(RuntimeShardedDatabaseTest, ReplicatedTablesCopyToAllShards) {
  WorkloadBundle b = SmallTpcc();
  DatabaseSolution solution = HashWithReplicatedWarehouse(*b.db, 3);
  ShardedDatabase sharded(*b.db, solution);

  TableId wh = b.db->schema().FindTable("WAREHOUSE").value();
  uint64_t warehouses = b.db->table_data(wh).num_rows();
  EXPECT_EQ(sharded.replicated_tuples(), warehouses);
  EXPECT_GT(sharded.ReplicationFactor(), 1.0);
  for (int32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(sharded.shard_table_tuples(s, wh), warehouses);
    for (RowId r = 0; r < warehouses; ++r) {
      EXPECT_TRUE(sharded.Contains(s, TupleId{wh, static_cast<RowId>(r)}));
    }
  }
}

TEST(RuntimeMetricsTest, HistogramQuantilesBracketRecordedValues) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.max_us(), 1000u);
  EXPECT_NEAR(h.mean_us(), 500.5, 0.01);
  // Power-of-two buckets: quantiles are exact to within one octave.
  double p50 = h.Quantile(0.50);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  double p99 = h.Quantile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_LE(h.Quantile(0.50), h.Quantile(0.95));
  EXPECT_LE(h.Quantile(0.95), h.Quantile(0.99));
}

TEST(RuntimeMetricsTest, QuantileRankUsesCeiling) {
  // Regression: the rank was truncated (q*n cast to integer) instead of
  // ceiled, picking one observation too low for small counts. With 9
  // observations of 1us and one of 1000us, p95 must select the 10th
  // observation (rank ceil(0.95 * 10) = 10), i.e. the [512, 1024) bucket.
  LatencyHistogram h;
  for (int i = 0; i < 9; ++i) h.Record(1);
  h.Record(1000);
  // rank 10: seen = 9 in bucket [1,2), the 10th is the 1000us observation.
  EXPECT_DOUBLE_EQ(h.Quantile(0.95), 1024.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1024.0);
  // rank ceil(0.9 * 10) = 9: still inside the [1,2) bucket.
  EXPECT_DOUBLE_EQ(h.Quantile(0.9), 2.0);
  // rank ceil(0.5 * 10) = 5: interpolated 5/9 into [1,2).
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.0 + 5.0 / 9.0);
}

TEST(RuntimeMetricsTest, QuantileHandComputedSmallCounts) {
  // 4 observations at 1, 2, 3, 4us: buckets [1,2)x1, [2,4)x2, [4,8)x1.
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 4; ++v) h.Record(v);
  // p25 -> rank 1 -> whole [1,2) bucket interpolated to its upper edge.
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 2.0);
  // p50 -> rank 2 -> first of two observations in [2,4).
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 3.0);
  // p75 -> rank 3 -> second observation in [2,4).
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 4.0);
  // p99 -> rank ceil(3.96) = 4 -> the [4,8) bucket.
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 8.0);
}

TEST(RuntimeMetricsTest, HistogramEmptyAndZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.Quantile(0.99), 0.0);
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  // A 0us observation lands in bucket [0, 1); its quantile reports at most
  // the bucket's upper edge.
  EXPECT_LE(h.Quantile(0.5), 1.0);
}

TEST(RuntimeReplayTest, ConservationUnderContention) {
  WorkloadBundle b = SmallTpcc(800);
  DatabaseSolution solution = MakeNaiveHashSolution(*b.db, 4);
  RuntimeOptions opt = FastOptions();
  opt.num_clients = 8;  // more clients than shards: heavy queue contention
  ReplayReport report = Replay(*b.db, solution, b.trace, opt, "conservation");

  EXPECT_EQ(report.total_txns, b.trace.size());
  EXPECT_EQ(report.committed, b.trace.size());  // nothing lost, nothing doubled
  EXPECT_EQ(report.residency_faults, 0u);
  uint64_t homed = 0;
  for (const ShardReport& s : report.shards) homed += s.local_txns;
  homed += report.distributed.count;
  EXPECT_EQ(homed, report.committed);
}

TEST(RuntimeReplayTest, DeterministicCommitCountsAcrossRuns) {
  WorkloadBundle b1 = SmallTpcc(500, 21);
  WorkloadBundle b2 = SmallTpcc(500, 21);
  DatabaseSolution s1 = MakeNaiveHashSolution(*b1.db, 4);
  DatabaseSolution s2 = MakeNaiveHashSolution(*b2.db, 4);
  ReplayReport r1 = Replay(*b1.db, s1, b1.trace, FastOptions());
  ReplayReport r2 = Replay(*b2.db, s2, b2.trace, FastOptions());
  EXPECT_EQ(r1.committed, r2.committed);
  EXPECT_EQ(r1.distributed_committed, r2.distributed_committed);
  // Thread scheduling may vary, but the per-shard homes are decided by
  // classification, which is deterministic.
  for (size_t s = 0; s < r1.shards.size(); ++s) {
    EXPECT_EQ(r1.shards[s].local_txns, r2.shards[s].local_txns);
    EXPECT_EQ(r1.shards[s].dist_participations, r2.shards[s].dist_participations);
  }
}

TEST(RuntimeReplayTest, MeasuredDistributedFractionMatchesStaticEvaluator) {
  WorkloadBundle b = SmallTpcc(700);
  for (int32_t k : {2, 4}) {
    DatabaseSolution hash = MakeNaiveHashSolution(*b.db, k);
    EvalResult expected = Evaluate(*b.db, hash, b.trace);
    ReplayReport measured = Replay(*b.db, hash, b.trace, FastOptions());
    EXPECT_EQ(measured.distributed_committed, expected.distributed_txns)
        << "hash solution, k=" << k;
    EXPECT_DOUBLE_EQ(measured.distributed_fraction(), expected.cost());

    // Replicated-write path must agree too (WAREHOUSE writes hit all shards).
    DatabaseSolution repl = HashWithReplicatedWarehouse(*b.db, k);
    EvalResult expected_repl = Evaluate(*b.db, repl, b.trace);
    ReplayReport measured_repl = Replay(*b.db, repl, b.trace, FastOptions());
    EXPECT_EQ(measured_repl.distributed_committed, expected_repl.distributed_txns)
        << "replicated-warehouse solution, k=" << k;
  }
}

TEST(RuntimeReplayTest, SimulatedCostsShowUpInLatencies) {
  WorkloadBundle b = SmallTpcc(120);
  DatabaseSolution solution = MakeNaiveHashSolution(*b.db, 2);
  RuntimeOptions opt = FastOptions();
  opt.round_trip_us = 300;
  ReplayReport report = Replay(*b.db, solution, b.trace, opt);
  ASSERT_GT(report.distributed.count, 0u);
  // Two round trips of 300us each: no distributed txn can finish faster.
  EXPECT_GE(report.distributed.p50_us, 600.0);
  EXPECT_GE(report.distributed.mean_us, 600.0);
}

TEST(RuntimeReplayTest, JsonExportContainsPerShardQuantiles) {
  WorkloadBundle b = SmallTpcc(200);
  DatabaseSolution solution = MakeNaiveHashSolution(*b.db, 2);
  ReplayReport report = Replay(*b.db, solution, b.trace, FastOptions(), "json-check");
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"label\":\"json-check\""), std::string::npos);
  EXPECT_NE(json.find("\"distributed_txns\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":[{\"shard\":0"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(RuntimeReplayTest, ClassifyTraceAssignsEveryTxnAHome) {
  WorkloadBundle b = SmallTpcc(300);
  DatabaseSolution solution = HashWithReplicatedWarehouse(*b.db, 3);
  std::vector<ClassifiedTxn> classified = ClassifyTrace(*b.db, solution, b.trace);
  ASSERT_EQ(classified.size(), b.trace.size());
  for (const ClassifiedTxn& ct : classified) {
    ASSERT_FALSE(ct.participants.empty());
    EXPECT_TRUE(std::is_sorted(ct.participants.begin(), ct.participants.end()));
    EXPECT_EQ(ct.home, ct.participants.front());
    for (int32_t p : ct.participants) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, 3);
    }
    if (ct.participants.size() > 1) {
      EXPECT_TRUE(ct.RequiresTwoPhaseCommit());
    }
  }
}

TEST(RuntimeRouterTest, ConcurrentRouteValueIsSafe) {
  WorkloadBundle b = SmallTpcc(200);
  DatabaseSolution solution = MakeNaiveHashSolution(*b.db, 4);
  Router router(b.db.get(), &solution);

  const Schema& schema = b.db->schema();
  TableId wh = schema.FindTable("WAREHOUSE").value();
  TableId dist = schema.FindTable("DISTRICT").value();
  ColumnRef wh_id{wh, schema.table(wh).FindColumn("W_ID").value()};
  ColumnRef d_w_id{dist, schema.table(dist).FindColumn("D_W_ID").value()};

  // Lazy build raced from many threads: ThreadSanitizer validates the lock.
  std::vector<std::thread> threads;
  std::atomic<size_t> routed{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        ColumnRef attr = (t + i) % 2 == 0 ? wh_id : d_w_id;
        std::vector<int32_t> parts =
            router.RouteValue(attr, Value(static_cast<int64_t>(i % 4 + 1)));
        if (!parts.empty()) routed.fetch_add(1);
        ASSERT_TRUE(std::is_sorted(parts.begin(), parts.end()));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(routed.load(), 8u * 50u);
}

TEST(RuntimeRouterTest, WarmPrebuildsTables) {
  WorkloadBundle b = SmallTpcc(100);
  DatabaseSolution solution = MakeNaiveHashSolution(*b.db, 2);
  Router router(b.db.get(), &solution);
  const Schema& schema = b.db->schema();
  TableId wh = schema.FindTable("WAREHOUSE").value();
  ColumnRef wh_id{wh, schema.table(wh).FindColumn("W_ID").value()};
  router.Warm({wh_id});
  EXPECT_GT(router.LookupTableSize(wh_id), 0u);
}

TEST(RuntimeEvaluatorTest, ClassCostOutOfRangeIsZero) {
  EvalResult r;
  r.class_total = {10, 0};
  r.class_distributed = {5, 0};
  EXPECT_DOUBLE_EQ(r.class_cost(0), 0.5);
  EXPECT_DOUBLE_EQ(r.class_cost(1), 0.0);
  EXPECT_DOUBLE_EQ(r.class_cost(99), 0.0);  // beyond the trace's class count
  EXPECT_EQ(r.class_total_of(99), 0u);
  EXPECT_EQ(r.class_distributed_of(99), 0u);
}

}  // namespace
}  // namespace jecb
