// Tests for the multi-process distributed shard runtime (src/dist): the
// cross-backend outcome oracle — ReplayReport::OutcomeSignature() must be
// bit-identical between the in-process backend and the forked shard-server
// socket backends for the same seed, at any client count, with and without
// injected 2PC faults, and with wire faults (drops, delays, duplicates,
// disconnects) layered on top — plus transport accounting, conservation
// invariants, exchange-style tuple routing parity (identical assembled
// read-set digests and jecb_exchange_* counters across backends), and clean
// shard-process shutdown with per-child exit statuses. Runs under
// ThreadSanitizer via tools/run_tsan.sh (label: tsan); children are forked
// single-threaded and only afterwards spawn their one exchange data-plane
// thread, which shares no mutable state with the control loop except the
// join at shutdown — so the whole protocol stays sanitizer-clean.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/metrics_http.h"
#include "dist/replay.h"
#include "dist/transport.h"
#include "net/wire.h"
#include "obs/cluster_telemetry.h"
#include "obs/flight_recorder.h"
#include "obs/trace_export.h"
#include "obs/trace_recorder.h"
#include "partition/evaluator.h"
#include "workloads/tpcc.h"

namespace jecb {
namespace {

WorkloadBundle SmallTpcc(size_t txns = 300, uint64_t seed = 7) {
  TpccConfig cfg;
  cfg.warehouses = 4;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 20;
  cfg.initial_orders_per_district = 2;
  return TpccWorkload(cfg).Make(txns, seed);
}

/// Hash everything except WAREHOUSE, which is replicated — so the replay
/// mixes local txns, ordinary multi-shard 2PC, and replicated-write
/// (all-shards 2PC) traffic over the wire.
DatabaseSolution MixedSolution(const Database& db, int32_t k) {
  DatabaseSolution s = MakeNaiveHashSolution(db, k);
  TableId wh = db.schema().FindTable("WAREHOUSE").value();
  s.Set(wh, std::make_shared<ReplicatedTable>());
  return s;
}

RuntimeOptions FastOptions(TransportKind transport, int clients) {
  RuntimeOptions opt;
  opt.transport = transport;
  opt.num_clients = clients;
  opt.local_work_us = 0;
  opt.round_trip_us = 0;
  opt.lock_hold_us = 0;
  return opt;
}

/// 2PC faults at meaningful rates but near-zero simulated durations, so the
/// fault *logic* crosses the wire without spending wall time.
FaultPlan CoordinationFaults() {
  FaultPlan plan;
  plan.stall_rate = 0.10;
  plan.stall_us = 0;
  plan.prepare_reject_rate = 0.15;
  plan.coordinator_timeout_rate = 0.10;
  plan.timeout_us = 0;
  plan.shard_down_rate = 0.10;
  plan.max_attempts = 3;
  plan.backoff_base_us = 0;
  plan.backoff_cap_us = 0;
  return plan;
}

FaultPlan WireFaults(FaultPlan plan = {}) {
  plan.wire_drop_rate = 0.05;
  plan.wire_retransmit_us = 0;
  plan.wire_delay_rate = 0.05;
  plan.wire_delay_us = 0;
  plan.wire_duplicate_rate = 0.05;
  plan.wire_disconnect_rate = 0.02;
  return plan;
}

ReplayReport RunReplay(const WorkloadBundle& b, const DatabaseSolution& solution,
                 TransportKind transport, int clients, const FaultPlan& faults,
                 const std::string& label) {
  RuntimeOptions opt = FastOptions(transport, clients);
  opt.faults = faults;
  return Replay(*b.db, solution, b.trace, opt, label);
}

void ExpectConservation(const ReplayReport& r) {
  EXPECT_EQ(r.committed + r.failed, r.total_txns);
  EXPECT_EQ(r.aborts, r.retries + r.failed);
}

TEST(DistRuntimeTest, SocketBackendMatchesInProcessSignatureWithoutFaults) {
  WorkloadBundle b = SmallTpcc();
  DatabaseSolution solution = MixedSolution(*b.db, 4);
  ReplayReport ref =
      RunReplay(b, solution, TransportKind::kInProcess, 4, {}, "inproc");
  ExpectConservation(ref);
  EXPECT_EQ(ref.committed, ref.total_txns);
  EXPECT_GT(ref.distributed_committed, 0u);

  // ISSUE contract: equality at 1, 4 and 8 clients — the signature must be
  // independent of both the backend and the client count.
  for (int clients : {1, 4, 8}) {
    ReplayReport dist = RunReplay(b, solution, TransportKind::kUnixSocket, clients,
                            {}, "unix-" + std::to_string(clients));
    ExpectConservation(dist);
    EXPECT_EQ(dist.OutcomeSignature(), ref.OutcomeSignature())
        << "clients=" << clients;
    EXPECT_EQ(dist.committed, ref.committed);
    EXPECT_EQ(dist.distributed_committed, ref.distributed_committed);
    EXPECT_EQ(dist.residency_faults, ref.residency_faults);
  }
}

TEST(DistRuntimeTest, SocketBackendMatchesInProcessSignatureUnderFaults) {
  WorkloadBundle b = SmallTpcc();
  DatabaseSolution solution = MixedSolution(*b.db, 4);
  const FaultPlan faults = CoordinationFaults();
  ReplayReport ref =
      RunReplay(b, solution, TransportKind::kInProcess, 4, faults, "inproc-faults");
  ExpectConservation(ref);
  // The plan's rates must actually bite for this test to mean anything.
  EXPECT_GT(ref.aborts, 0u);
  EXPECT_GT(ref.prepare_rejects, 0u);
  EXPECT_GT(ref.shard_down_aborts, 0u);
  EXPECT_GT(ref.stalls_injected, 0u);

  for (int clients : {1, 4, 8}) {
    ReplayReport dist = RunReplay(b, solution, TransportKind::kUnixSocket, clients,
                            faults, "unix-faults-" + std::to_string(clients));
    ExpectConservation(dist);
    EXPECT_EQ(dist.OutcomeSignature(), ref.OutcomeSignature())
        << "clients=" << clients;
    EXPECT_EQ(dist.coordinator_timeouts, ref.coordinator_timeouts);
    EXPECT_EQ(dist.shard_down_aborts, ref.shard_down_aborts);
    EXPECT_EQ(dist.failed, ref.failed);
  }
}

TEST(DistRuntimeTest, WireFaultsPerturbTransportCountersButNeverOutcomes) {
  WorkloadBundle b = SmallTpcc();
  DatabaseSolution solution = MixedSolution(*b.db, 4);
  const FaultPlan coordination = CoordinationFaults();
  ReplayReport ref = RunReplay(b, solution, TransportKind::kInProcess, 4,
                         coordination, "inproc-ref");

  ReplayReport wired = RunReplay(b, solution, TransportKind::kUnixSocket, 4,
                           WireFaults(coordination), "unix-wire-faults");
  ExpectConservation(wired);
  // The masking contract: drops retransmit, duplicates dedup, disconnects
  // reconnect between transactions — so the wire chaos shows up ONLY in the
  // transport counters, never in the 2PC outcome.
  EXPECT_EQ(wired.OutcomeSignature(), ref.OutcomeSignature());
  EXPECT_GT(wired.transport_counters.wire_drops, 0u);
  EXPECT_GT(wired.transport_counters.wire_delays, 0u);
  EXPECT_GT(wired.transport_counters.wire_duplicates, 0u);
  EXPECT_GT(wired.transport_counters.reconnects, 0u);
  // Every injected duplicate must have been suppressed by a shard server.
  EXPECT_GE(wired.transport_counters.dedup_drops,
            wired.transport_counters.wire_duplicates);
}

TEST(DistRuntimeTest, TcpBackendMatchesInProcessSignature) {
  WorkloadBundle b = SmallTpcc(200);
  DatabaseSolution solution = MixedSolution(*b.db, 2);
  ReplayReport ref =
      RunReplay(b, solution, TransportKind::kInProcess, 2, {}, "inproc-tcp-ref");
  ReplayReport tcp = RunReplay(b, solution, TransportKind::kTcpSocket, 2, {}, "tcp");
  ExpectConservation(tcp);
  EXPECT_EQ(tcp.OutcomeSignature(), ref.OutcomeSignature());
  EXPECT_EQ(tcp.transport, TransportKind::kTcpSocket);
  EXPECT_GT(tcp.transport_counters.messages_sent, 0u);
}

TEST(DistRuntimeTest, SocketTransportReportsWireAccounting) {
  WorkloadBundle b = SmallTpcc(200);
  DatabaseSolution solution = MixedSolution(*b.db, 4);
  ReplayReport r =
      RunReplay(b, solution, TransportKind::kUnixSocket, 4, {}, "unix-accounting");

  EXPECT_EQ(r.transport, TransportKind::kUnixSocket);
  const TransportCounters& c = r.transport_counters;
  // Every local txn is one Execute/Ack pair; every 2PC participant costs a
  // Prepare/Vote plus a Commit/Ack — so traffic must dominate txn count.
  EXPECT_GT(c.messages_sent, r.total_txns);
  EXPECT_GT(c.messages_received, r.total_txns);
  EXPECT_GT(c.bytes_sent, c.messages_sent * net::kFrameHeaderBytes);
  EXPECT_GT(c.bytes_received, 0u);
  // The shard servers confirmed processing what the coordinators sent
  // (shutdown-control frames are not echoed in shard_frames' sender count,
  // so allow the harvested number to exceed the sessions' sends).
  EXPECT_GE(c.shard_frames, c.messages_sent);
  EXPECT_GT(c.shard_bytes, 0u);
  EXPECT_EQ(c.wire_drops, 0u);
  EXPECT_EQ(c.reconnects, 0u);

  // Per-shard wire RTT histograms made it into the report and its renderers.
  EXPECT_GT(r.transport_rtt.count, 0u);
  uint64_t per_shard = 0;
  for (const ShardReport& s : r.shards) per_shard += s.rtt_count;
  EXPECT_EQ(per_shard, r.transport_rtt.count);
  EXPECT_NE(r.ToJson().find("\"transport\":{\"kind\":\"unix\""), std::string::npos);
  EXPECT_NE(r.ToPrometheus().find("jecb_transport_rtt_us"), std::string::npos);
  EXPECT_NE(r.ToAscii().find("rtt_p50/p95/p99_us"), std::string::npos);
}

TEST(DistRuntimeTest, InProcessBackendHasNoWireTraffic) {
  WorkloadBundle b = SmallTpcc(100);
  DatabaseSolution solution = MixedSolution(*b.db, 2);
  ReplayReport r =
      RunReplay(b, solution, TransportKind::kInProcess, 2, {}, "inproc-quiet");
  EXPECT_EQ(r.transport, TransportKind::kInProcess);
  EXPECT_EQ(r.transport_counters.messages_sent, 0u);
  EXPECT_EQ(r.transport_counters.bytes_sent, 0u);
  EXPECT_EQ(r.transport_rtt.count, 0u);
  for (const ShardReport& s : r.shards) EXPECT_EQ(s.rtt_count, 0u);
}

// ---------------------------------------------------------------------------
// Exchange-style tuple routing

/// Compares every backend-invariant exchange quantity, the payload digest
/// chief among them: equal digests mean the assembled tuple BYTES were
/// identical entry for entry (the digest hashes table, row and encoded bytes
/// of every read, folded per txn), which is the cross-backend contract.
void ExpectExchangeParity(const ReplayReport& got, const ReplayReport& ref,
                          const std::string& ctx) {
  EXPECT_EQ(got.exchange_digest, ref.exchange_digest) << ctx;
  EXPECT_EQ(got.exchange_txns, ref.exchange_txns) << ctx;
  EXPECT_EQ(got.exchange_tuples, ref.exchange_tuples) << ctx;
  EXPECT_EQ(got.exchange_bytes, ref.exchange_bytes) << ctx;
  EXPECT_EQ(got.exchange_remote_tuples, ref.exchange_remote_tuples) << ctx;
  EXPECT_EQ(got.exchange_remote_bytes, ref.exchange_remote_bytes) << ctx;
  EXPECT_EQ(got.exchange_batches, ref.exchange_batches) << ctx;
  EXPECT_EQ(got.exchange_fanout_hist.count, ref.exchange_fanout_hist.count)
      << ctx;
  ASSERT_EQ(got.shards.size(), ref.shards.size()) << ctx;
  for (size_t s = 0; s < got.shards.size(); ++s) {
    EXPECT_EQ(got.shards[s].exchange_tuples_out, ref.shards[s].exchange_tuples_out)
        << ctx << " shard=" << s;
    EXPECT_EQ(got.shards[s].exchange_bytes_out, ref.shards[s].exchange_bytes_out)
        << ctx << " shard=" << s;
  }
}

TEST(DistRuntimeTest, ExchangeParityAcrossBackendsAndClientCounts) {
  WorkloadBundle b = SmallTpcc();
  DatabaseSolution solution = MixedSolution(*b.db, 4);
  ReplayReport ref =
      RunReplay(b, solution, TransportKind::kInProcess, 4, {}, "inproc-exch");
  // The workload must actually move rows for this test to mean anything.
  EXPECT_GT(ref.exchange_txns, 0u);
  EXPECT_GT(ref.exchange_tuples, 0u);
  EXPECT_GT(ref.exchange_remote_tuples, 0u);
  EXPECT_GT(ref.exchange_batches, 0u);
  EXPECT_NE(ref.exchange_digest, 0u);

  for (TransportKind kind : {TransportKind::kUnixSocket, TransportKind::kTcpSocket}) {
    for (int clients : {1, 4, 8}) {
      const std::string ctx = std::string(TransportKindName(kind)) + "-" +
                              std::to_string(clients);
      ReplayReport dist = RunReplay(b, solution, kind, clients, {}, ctx);
      EXPECT_EQ(dist.OutcomeSignature(), ref.OutcomeSignature()) << ctx;
      ExpectExchangeParity(dist, ref, ctx);
      // The wire actually carried the rows: the home shards streamed every
      // assembled read set to their coordinators, and rows owned elsewhere
      // crossed the shard-to-shard data plane.
      EXPECT_GE(dist.transport_counters.exchange_tuples, dist.exchange_tuples)
          << ctx;
      EXPECT_GT(dist.transport_counters.exchange_requests, 0u) << ctx;
      EXPECT_GT(dist.transport_counters.exchange_batches, 0u) << ctx;
      EXPECT_GT(dist.transport_counters.exchange_bytes, 0u) << ctx;
    }
  }
}

TEST(DistRuntimeTest, ExchangeParitySurvivesWireFaultMixes) {
  WorkloadBundle b = SmallTpcc();
  DatabaseSolution solution = MixedSolution(*b.db, 4);
  const FaultPlan coordination = CoordinationFaults();
  ReplayReport ref = RunReplay(b, solution, TransportKind::kInProcess, 4,
                               coordination, "inproc-exch-faults");
  EXPECT_GT(ref.exchange_txns, 0u);
  EXPECT_GT(ref.aborts, 0u);  // exchange must fire on committing attempts only

  for (int clients : {1, 4, 8}) {
    const std::string ctx = "unix-wire-exch-" + std::to_string(clients);
    ReplayReport dist = RunReplay(b, solution, TransportKind::kUnixSocket,
                                  clients, WireFaults(coordination), ctx);
    EXPECT_EQ(dist.OutcomeSignature(), ref.OutcomeSignature()) << ctx;
    ExpectExchangeParity(dist, ref, ctx);
    // Every injected duplicate — control plane AND data plane — was
    // suppressed by a receiver's watermark.
    EXPECT_GE(dist.transport_counters.dedup_drops,
              dist.transport_counters.wire_duplicates)
        << ctx;
  }
}

TEST(DistRuntimeTest, ExchangeBatchesStraddleFrameBoundaries) {
  WorkloadBundle b = SmallTpcc(150);
  DatabaseSolution solution = MixedSolution(*b.db, 4);
  RuntimeOptions tiny = FastOptions(TransportKind::kInProcess, 2);
  tiny.exchange_batch_bytes = 64;  // clamp floor: nearly every row its own batch
  ReplayReport ref = Replay(*b.db, solution, b.trace, tiny, "inproc-tiny-batch");
  RuntimeOptions coarse = FastOptions(TransportKind::kInProcess, 2);
  ReplayReport coarse_ref =
      Replay(*b.db, solution, b.trace, coarse, "inproc-default-batch");
  // Same rows, same digest; the tiny budget only fragments the stream.
  EXPECT_EQ(ref.exchange_digest, coarse_ref.exchange_digest);
  EXPECT_EQ(ref.exchange_tuples, coarse_ref.exchange_tuples);
  EXPECT_GT(ref.exchange_batches, coarse_ref.exchange_batches);

  // The wire backend splits identically: multi-batch streams straddle
  // CommitAck-terminated frame sequences without losing or reordering rows.
  tiny.transport = TransportKind::kUnixSocket;
  ReplayReport dist = Replay(*b.db, solution, b.trace, tiny, "unix-tiny-batch");
  EXPECT_EQ(dist.OutcomeSignature(), ref.OutcomeSignature());
  ExpectExchangeParity(dist, ref, "unix-tiny-batch");
}

TEST(DistRuntimeTest, ExchangeOffBaselineKeepsSignatureAndZeroCounters) {
  WorkloadBundle b = SmallTpcc(150);
  DatabaseSolution solution = MixedSolution(*b.db, 4);
  RuntimeOptions on = FastOptions(TransportKind::kUnixSocket, 2);
  ReplayReport with = Replay(*b.db, solution, b.trace, on, "unix-exch-on");
  RuntimeOptions off = FastOptions(TransportKind::kUnixSocket, 2);
  off.exchange_enabled = false;
  ReplayReport without = Replay(*b.db, solution, b.trace, off, "unix-exch-off");
  // Exchange is pure payload movement: 2PC outcomes are identical with it
  // on or off, and off means genuinely off — no counters, no digest, no
  // data-plane traffic.
  EXPECT_EQ(with.OutcomeSignature(), without.OutcomeSignature());
  EXPECT_GT(with.exchange_txns, 0u);
  EXPECT_EQ(without.exchange_txns, 0u);
  EXPECT_EQ(without.exchange_tuples, 0u);
  EXPECT_EQ(without.exchange_digest, 0u);
  EXPECT_EQ(without.transport_counters.exchange_requests, 0u);
  EXPECT_EQ(without.transport_counters.exchange_tuples, 0u);
  for (const ShardReport& s : without.shards) {
    EXPECT_EQ(s.exchange_tuples_out, 0u);
  }
}

TEST(DistRuntimeTest, ForcedReconnectsMidReplayKeepParity) {
  // Satellite regression for the watermark-vs-reconnect contract: tear every
  // channel down between transactions (disconnect rate 1.0) so the replay is
  // wall-to-wall reconnects. If a reconnected channel kept its old send
  // sequence — or the server kept the old connection's watermark — frames
  // after the reconnect would be swallowed as duplicates and the replay
  // would hang or diverge.
  WorkloadBundle b = SmallTpcc(150);
  DatabaseSolution solution = MixedSolution(*b.db, 4);
  ReplayReport ref =
      RunReplay(b, solution, TransportKind::kInProcess, 2, {}, "inproc-reconn");
  FaultPlan always_reconnect;
  always_reconnect.wire_disconnect_rate = 1.0;
  ReplayReport dist = RunReplay(b, solution, TransportKind::kUnixSocket, 2,
                                always_reconnect, "unix-reconn");
  ExpectConservation(dist);
  EXPECT_EQ(dist.OutcomeSignature(), ref.OutcomeSignature());
  ExpectExchangeParity(dist, ref, "unix-reconn");
  EXPECT_GT(dist.transport_counters.reconnects, 0u);
}

TEST(DistRuntimeTest, ShardExitStatusesAreRecordedAndClean) {
  WorkloadBundle b = SmallTpcc(120);
  DatabaseSolution solution = MixedSolution(*b.db, 4);
  ReplayReport r =
      RunReplay(b, solution, TransportKind::kUnixSocket, 2, {}, "unix-exits");
  ASSERT_EQ(r.shard_exits.size(), r.shards.size());
  for (const ShardExitStatus& e : r.shard_exits) {
    EXPECT_GE(e.shard, 0);
    EXPECT_TRUE(e.clean()) << "shard=" << e.shard
                           << " exit_code=" << e.exit_code
                           << " term_signal=" << e.term_signal;
    EXPECT_FALSE(e.forced_kill);
  }
  EXPECT_EQ(r.abnormal_shard_exits(), 0u);
  EXPECT_NE(r.ToJson().find("\"shard_exits\":["), std::string::npos);

  ReplayReport inproc =
      RunReplay(b, solution, TransportKind::kInProcess, 2, {}, "inproc-exits");
  EXPECT_TRUE(inproc.shard_exits.empty());
  EXPECT_EQ(inproc.abnormal_shard_exits(), 0u);
}

// ---------------------------------------------------------------------------
// Distributed telemetry, merged cluster traces, and the flight recorder

TEST(DistTelemetryTest, ShutdownHarvestBuildsMergedClusterTrace) {
  WorkloadBundle b = SmallTpcc();
  DatabaseSolution solution = MixedSolution(*b.db, 4);
  ClusterTelemetry::Default().Reset();
  TraceRecorder& rec = TraceRecorder::Default();
  rec.Reset();
  rec.Enable();
  rec.SetThreadName("coordinator/main");

  ReplayReport r = RunReplay(b, solution, TransportKind::kUnixSocket, 4, {},
                             "unix-cluster-trace");
  EXPECT_EQ(r.abnormal_shard_exits(), 0u);
  // The shutdown harvest delivered one telemetry record per shard child.
  EXPECT_EQ(ClusterTelemetry::Default().num_processes(), 4u);

  std::string json = ClusterTelemetry::Default().RenderClusterTrace();
  rec.Reset();
  ClusterTelemetry::Default().Reset();

  std::vector<ChromeTraceEvent> events;
  std::string error;
  ASSERT_TRUE(ParseChromeTrace(json, &events, &error)) << error;

  std::map<int64_t, std::string> process_names;
  std::set<int64_t> span_pids;
  std::set<int64_t> txn_pids;  // pids contributing txn-correlated spans
  for (const ChromeTraceEvent& e : events) {
    if (e.ph == "M" && e.name == "process_name") {
      for (const auto& [k, v] : e.sargs) {
        if (k == "name") process_names[e.pid] = v;
      }
    } else if (e.ph == "X") {
      span_pids.insert(e.pid);
      for (const auto& [k, v] : e.args) {
        if (k == "txn") txn_pids.insert(e.pid);
      }
    }
  }
  // One labeled track per process: the coordinator plus all 4 shard children.
  ASSERT_EQ(process_names.size(), 5u);
  size_t shard_tracks = 0;
  bool has_coordinator = false;
  for (const auto& [pid, name] : process_names) {
    if (name == "coordinator") has_coordinator = true;
    if (name.rfind("shard-", 0) == 0) ++shard_tracks;
  }
  EXPECT_TRUE(has_coordinator);
  EXPECT_EQ(shard_tracks, 4u);

  if (kObsCompiledIn) {
    // The acceptance bar: actual spans from the coordinator AND every shard
    // child in one loadable document, correlated by txn id across tracks.
    EXPECT_EQ(span_pids.size(), 5u);
    EXPECT_GE(txn_pids.size(), 5u);
  } else {
    EXPECT_TRUE(span_pids.empty());
  }
}

TEST(DistTelemetryTest, TelemetryOnOffAndLivePollingKeepSignature) {
  WorkloadBundle b = SmallTpcc(200);
  DatabaseSolution solution = MixedSolution(*b.db, 4);
  const FaultPlan faults = CoordinationFaults();

  // The full acceptance matrix: inproc/unix/tcp at 1/4/8 clients, with the
  // shutdown harvest on (the default), off, and an aggressive live poller.
  // Outcomes are a pure function of (seed, txn id, attempt), so every cell
  // must land on the same signature as the 1-client in-process reference.
  RuntimeOptions base = FastOptions(TransportKind::kInProcess, 1);
  base.faults = faults;
  ASSERT_TRUE(base.telemetry_harvest);  // harvest-at-shutdown is the default
  const uint64_t ref =
      Replay(*b.db, solution, b.trace, base, "inproc-tel-ref").OutcomeSignature();

  for (TransportKind t : {TransportKind::kInProcess, TransportKind::kUnixSocket,
                          TransportKind::kTcpSocket}) {
    for (int clients : {1, 4, 8}) {
      for (int mode = 0; mode < 3; ++mode) {
        // Socket-only telemetry modes are no-ops in-process; one inproc pass
        // per client count is enough.
        if (t == TransportKind::kInProcess && mode > 0) continue;
        RuntimeOptions opt = FastOptions(t, clients);
        opt.faults = faults;
        if (mode == 1) opt.telemetry_harvest = false;
        if (mode == 2) opt.telemetry_period_ms = 5;  // live poll during replay
        const std::string label = std::string(TransportKindName(t)) + "-c" +
                                  std::to_string(clients) + "-m" +
                                  std::to_string(mode);
        ReplayReport r = Replay(*b.db, solution, b.trace, opt, label);
        EXPECT_EQ(r.OutcomeSignature(), ref) << label;
      }
    }
  }
}

TEST(DistTelemetryTest, InjectedCrashLeavesParseablePostmortem) {
  WorkloadBundle b = SmallTpcc(150);
  DatabaseSolution solution = MixedSolution(*b.db, 2);
  ReplayReport ref =
      RunReplay(b, solution, TransportKind::kInProcess, 2, {}, "inproc-crash-ref");

  RuntimeOptions opt = FastOptions(TransportKind::kUnixSocket, 2);
  opt.debug_crash_on_shutdown_shard = 1;
  ReplayReport r = Replay(*b.db, solution, b.trace, opt, "unix-crash");

  // The crash fires at shutdown, after the workload — outcomes are intact,
  // the exit record is not.
  EXPECT_EQ(r.OutcomeSignature(), ref.OutcomeSignature());
  EXPECT_GT(r.abnormal_shard_exits(), 0u);
  ASSERT_EQ(r.shard_exits.size(), 2u);
  const ShardExitStatus& crashed = r.shard_exits[1];
  EXPECT_FALSE(crashed.clean());
  EXPECT_EQ(crashed.exit_code, 3);
  ASSERT_FALSE(crashed.postmortem_path.empty());
  // The healthy shard shut down normally and left no dump.
  EXPECT_TRUE(r.shard_exits[0].clean());
  EXPECT_TRUE(r.shard_exits[0].postmortem_path.empty());
  // The report surfaces the path.
  EXPECT_NE(r.ToJson().find("\"postmortem\":"), std::string::npos);

  std::ifstream in(crashed.postmortem_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << crashed.postmortem_path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

  std::vector<ChromeTraceEvent> events;
  std::string error;
  EXPECT_TRUE(ParseChromeTrace(doc, &events, &error)) << error;
  PostmortemHeader header;
  ASSERT_TRUE(ParsePostmortemHeader(doc, &header));
  EXPECT_EQ(header.shard, 1);
  EXPECT_EQ(header.reason, "injected-crash");
  EXPECT_GT(header.pid, 0);

  std::remove(crashed.postmortem_path.c_str());
}

TEST(DistTelemetryTest, WedgedShardIsTermedAndLeavesSigtermPostmortem) {
  WorkloadBundle b = SmallTpcc(100);
  DatabaseSolution solution = MixedSolution(*b.db, 2);
  RuntimeOptions opt = FastOptions(TransportKind::kUnixSocket, 2);
  opt.debug_wedge_shard = 0;  // ignores kShutdown; reap ladder must SIGTERM
  ReplayReport r = Replay(*b.db, solution, b.trace, opt, "unix-wedge");

  ASSERT_EQ(r.shard_exits.size(), 2u);
  const ShardExitStatus& wedged = r.shard_exits[0];
  EXPECT_TRUE(wedged.forced_term);
  EXPECT_FALSE(wedged.forced_kill);  // SIGTERM sufficed: dump, then exit
  ASSERT_FALSE(wedged.postmortem_path.empty());

  std::ifstream in(wedged.postmortem_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << wedged.postmortem_path;
  std::ostringstream buf;
  buf << in.rdbuf();
  PostmortemHeader header;
  ASSERT_TRUE(ParsePostmortemHeader(buf.str(), &header));
  EXPECT_EQ(header.shard, 0);
  EXPECT_EQ(header.reason, "sigterm");

  std::remove(wedged.postmortem_path.c_str());
}

TEST(DistTelemetryTest, LiveMetricsEndpointServesClusterSeriesMidReplay) {
  WorkloadBundle b = SmallTpcc(200);
  DatabaseSolution solution = MixedSolution(*b.db, 2);
  ClusterTelemetry::Default().Reset();

  dist::MetricsHttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  // Scrape WHILE the replay runs (the poller feeds shard snapshots in), and
  // again after shutdown when the final harvest has landed.
  std::string mid_body;
  bool mid_ok = false;
  std::thread scraper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Result<std::string> res = dist::ScrapeMetricsOnce(server.port());
    mid_ok = res.ok();
    if (res.ok()) mid_body = std::move(res).value();
  });
  RuntimeOptions opt = FastOptions(TransportKind::kUnixSocket, 2);
  opt.telemetry_period_ms = 10;
  ReplayReport r = Replay(*b.db, solution, b.trace, opt, "unix-live-scrape");
  scraper.join();
  EXPECT_EQ(r.abnormal_shard_exits(), 0u);
  EXPECT_TRUE(mid_ok);

  Result<std::string> final_scrape = dist::ScrapeMetricsOnce(server.port());
  ASSERT_TRUE(final_scrape.ok());
  // After the shutdown harvest, the aggregated body carries shard-labeled
  // series rebuilt from the children's registries.
  EXPECT_NE(final_scrape.value().find(
                "jecb_shard_executed_local_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(final_scrape.value().find(
                "jecb_shard_executed_local_total{shard=\"1\"}"),
            std::string::npos);
  server.Stop();
  EXPECT_FALSE(dist::ScrapeMetricsOnce(server.port()).ok());
  ClusterTelemetry::Default().Reset();
}

TEST(DistRuntimeTest, BackToBackSocketReplaysReuseNothingStale) {
  // Two consecutive socket replays: the first Drain() must have reaped its
  // shard processes and unlinked its socket files, or the second would
  // collide (bind failure -> loud abort) or talk to orphaned servers.
  WorkloadBundle b = SmallTpcc(120);
  DatabaseSolution solution = MixedSolution(*b.db, 2);
  ReplayReport a =
      RunReplay(b, solution, TransportKind::kUnixSocket, 2, {}, "unix-a");
  ReplayReport c =
      RunReplay(b, solution, TransportKind::kUnixSocket, 2, {}, "unix-b");
  EXPECT_EQ(a.OutcomeSignature(), c.OutcomeSignature());
  EXPECT_EQ(a.committed, c.committed);
}

}  // namespace
}  // namespace jecb
