// Parity contract of the columnar pipeline: FlatTrace/TraceView must mirror
// the row-oriented Trace helpers exactly, the resolve-once Evaluate must be
// bit-identical to the legacy evaluator at every thread count, the shared
// JoinPathResolver must return the same values as direct path evaluation,
// and Jecb::Partition must produce the same solution with columnar on/off.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "jecb/jecb.h"
#include "partition/evaluator.h"
#include "partition/join_path_resolver.h"
#include "test_util.h"
#include "trace/flat_trace.h"
#include "trace/trace.h"
#include "workloads/synthetic.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"

namespace jecb {
namespace {

// ---- Layout ---------------------------------------------------------------

TEST(FlatTraceTest, FromTracePreservesAccessesClassesAndWriteBits) {
  Trace trace;
  uint32_t a = trace.InternClass("A");
  uint32_t b = trace.InternClass("B");
  Transaction t1;
  t1.class_id = a;
  t1.Read({3, 7});
  t1.Write({3, 7});  // same tuple read + written: one dictionary entry
  t1.Read({5, 1});
  trace.Add(std::move(t1));
  Transaction t2;
  t2.class_id = b;
  t2.Write({5, 1});
  trace.Add(std::move(t2));

  FlatTrace flat = FlatTrace::FromTrace(trace);
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_EQ(flat.num_accesses(), 4u);
  EXPECT_EQ(flat.num_tuples(), 2u);  // {3,7} and {5,1}
  EXPECT_EQ(flat.num_classes(), 2u);
  EXPECT_EQ(flat.class_name(a), "A");
  EXPECT_EQ(flat.class_of(0), a);
  EXPECT_EQ(flat.class_of(1), b);

  // First-touch dictionary order.
  EXPECT_EQ(flat.tuple(0), (TupleId{3, 7}));
  EXPECT_EQ(flat.tuple(1), (TupleId{5, 1}));

  auto acc1 = flat.accesses(0);
  ASSERT_EQ(acc1.size(), 3u);
  EXPECT_EQ(acc1[0].tuple_index(), 0u);
  EXPECT_FALSE(acc1[0].write());
  EXPECT_EQ(acc1[1].tuple_index(), 0u);
  EXPECT_TRUE(acc1[1].write());
  EXPECT_EQ(acc1[2].tuple_index(), 1u);
  auto acc2 = flat.accesses(1);
  ASSERT_EQ(acc2.size(), 1u);
  EXPECT_EQ(acc2[0].tuple_index(), 1u);
  EXPECT_TRUE(acc2[0].write());
}

// A view and a legacy Trace describe the same workload when every selected
// transaction has the same class and the same (tuple, write) sequence.
void ExpectViewMatchesTrace(const TraceView& view, const Trace& legacy) {
  ASSERT_EQ(view.size(), legacy.size());
  const std::vector<Transaction>& txns = legacy.transactions();
  for (size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view.class_of(i), txns[i].class_id) << "txn " << i;
    auto accesses = view.accesses(i);
    ASSERT_EQ(accesses.size(), txns[i].accesses.size()) << "txn " << i;
    for (size_t j = 0; j < accesses.size(); ++j) {
      EXPECT_EQ(view.trace().tuple(accesses[j].tuple_index()),
                txns[i].accesses[j].tuple);
      EXPECT_EQ(accesses[j].write(), txns[i].accesses[j].write);
    }
  }
}

TEST(TraceViewTest, FilterSplitHeadMirrorTraceHelpers) {
  WorkloadBundle bundle = TpccWorkload().Make(2000, 13);
  FlatTrace flat = FlatTrace::FromTrace(bundle.trace);
  TraceView all(&flat);
  ExpectViewMatchesTrace(all, bundle.trace);

  for (uint32_t cls = 0; cls < bundle.trace.num_classes(); ++cls) {
    Trace legacy_cls = bundle.trace.FilterClass(cls);
    TraceView view_cls = all.FilterClass(cls);
    ExpectViewMatchesTrace(view_cls, legacy_cls);

    // The composition Phase 2 performs: filter, then split.
    auto [legacy_train, legacy_test] = legacy_cls.SplitTrainTest(0.3);
    auto [view_train, view_test] = view_cls.SplitTrainTest(0.3);
    ExpectViewMatchesTrace(view_train, legacy_train);
    ExpectViewMatchesTrace(view_test, legacy_test);

    ExpectViewMatchesTrace(view_cls.Head(5), legacy_cls.Head(5));
    // Head larger than the view is the whole view.
    ExpectViewMatchesTrace(view_cls.Head(view_cls.size() + 100), legacy_cls);
  }

  // Split of the unfiltered trace, and fractions at the edges.
  for (double f : {0.0, 0.5, 1.0}) {
    auto [lt, lh] = bundle.trace.SplitTrainTest(f);
    auto [vt, vh] = all.SplitTrainTest(f);
    ExpectViewMatchesTrace(vt, lt);
    ExpectViewMatchesTrace(vh, lh);
  }
}

// ---- Resolver -------------------------------------------------------------

TEST(RowValueCacheTest, FindInsertAndGrowthKeepStablePointers) {
  RowValueCache cache;
  const Value* missing = nullptr;
  EXPECT_FALSE(cache.Find(0, &missing));

  // Insert enough to force several growths; keep every returned pointer.
  std::vector<const Value*> handles;
  for (RowId r = 0; r < 500; ++r) {
    handles.push_back(cache.Insert(r, Value(int64_t(r) * 3)));
  }
  cache.InsertFailure(1000);
  EXPECT_EQ(cache.size(), 501u);

  for (RowId r = 0; r < 500; ++r) {
    const Value* v = nullptr;
    ASSERT_TRUE(cache.Find(r, &v));
    EXPECT_EQ(v, handles[r]);  // stable across growth
    EXPECT_EQ(v->AsInt(), int64_t(r) * 3);
  }
  const Value* failed = reinterpret_cast<const Value*>(0x1);
  ASSERT_TRUE(cache.Find(1000, &failed));
  EXPECT_EQ(failed, nullptr);  // remembered failure
  EXPECT_FALSE(cache.Find(501, &failed));
}

TEST(JoinPathResolverTest, SharesCachesByPathAndMatchesDirectEvaluation) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  const Database& db = *fixture.db;
  const Schema& schema = db.schema();
  const TableId trade = schema.FindTable("TRADE").value();
  const TableId customer = schema.FindTable("CUSTOMER").value();
  const ColumnIdx c_id = schema.table(customer).FindColumn("C_ID").value();

  // TRADE -> CUSTOMER_ACCOUNT -> CUSTOMER.C_ID (fk registration order of
  // the fixture: 0 = CA->C, 1 = TRADE->CA, 2 = HS->CA).
  JoinPath to_customer{trade, {1, 0}, ColumnRef{customer, c_id}};
  ASSERT_TRUE(to_customer.Validate(schema).ok());

  JoinPathResolver resolver(fixture.db.get());
  JoinPathResolver::PathCache* cache = resolver.Cache(to_customer);
  // Same path again: same cache. A different path: a different cache.
  EXPECT_EQ(resolver.Cache(to_customer), cache);
  JoinPath to_ca_c_id{trade,
                      {1},
                      ColumnRef{schema.FindTable("CUSTOMER_ACCOUNT").value(),
                                schema.table(schema.FindTable("CUSTOMER_ACCOUNT").value())
                                    .FindColumn("CA_C_ID")
                                    .value()}};
  EXPECT_NE(resolver.Cache(to_ca_c_id), cache);
  EXPECT_EQ(resolver.num_paths(), 2u);

  for (TupleId t : fixture.trades) {
    const Value* v = cache->Resolve(t.row);
    ASSERT_NE(v, nullptr);
    Result<Value> direct = to_customer.Evaluate(db, t);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(*v, direct.value());
    // Second resolve: cached, same handle.
    EXPECT_EQ(cache->Resolve(t.row), v);
  }
  EXPECT_EQ(cache->resolved(), fixture.trades.size());
}

// ---- Evaluator ------------------------------------------------------------

void ExpectEvalEqual(const EvalResult& a, const EvalResult& b) {
  EXPECT_EQ(a.total_txns, b.total_txns);
  EXPECT_EQ(a.distributed_txns, b.distributed_txns);
  EXPECT_EQ(a.partitions_touched, b.partitions_touched);
  EXPECT_EQ(a.class_total, b.class_total);
  EXPECT_EQ(a.class_distributed, b.class_distributed);
  EXPECT_EQ(a.partition_load, b.partition_load);
}

void CheckEvaluateParity(const WorkloadBundle& bundle) {
  DatabaseSolution solution = MakeNaiveHashSolution(*bundle.db, 8);
  FlatTrace flat = FlatTrace::FromTrace(bundle.trace);

  EvalResult legacy = Evaluate(*bundle.db, solution, bundle.trace);
  EvalResult columnar = Evaluate(*bundle.db, solution, flat);
  ExpectEvalEqual(columnar, legacy);

  for (int threads : {4, 8}) {
    ThreadPool pool(threads);
    ExpectEvalEqual(Evaluate(*bundle.db, solution, flat, &pool), legacy);
  }

  // View evaluation: per-class results must match evaluating the legacy
  // per-class trace (same accounting, just without the copy).
  TraceView all(&flat);
  for (uint32_t cls = 0; cls < bundle.trace.num_classes(); ++cls) {
    Trace legacy_cls = bundle.trace.FilterClass(cls);
    EvalResult want = Evaluate(*bundle.db, solution, legacy_cls);
    EvalResult got = Evaluate(*bundle.db, solution, all.FilterClass(cls));
    // The legacy FilterClass re-interns only the touched classes' names but
    // keeps ids, so compare the aggregate counters rather than the vectors.
    EXPECT_EQ(got.total_txns, want.total_txns);
    EXPECT_EQ(got.distributed_txns, want.distributed_txns);
    EXPECT_EQ(got.partitions_touched, want.partitions_touched);
    EXPECT_EQ(got.partition_load, want.partition_load);
  }
}

TEST(FlatEvaluateTest, TpccParityAcrossThreadCounts) {
  CheckEvaluateParity(TpccWorkload().Make(5000, 11));
}

TEST(FlatEvaluateTest, TatpParityAcrossThreadCounts) {
  CheckEvaluateParity(TatpWorkload().Make(5000, 12));
}

TEST(FlatEvaluateTest, SyntheticParityAcrossThreadCounts) {
  CheckEvaluateParity(SyntheticWorkload().Make(5000, 13));
}

// ---- End-to-end -----------------------------------------------------------

TEST(JecbColumnarTest, ColumnarAndLegacyPipelinesChooseIdenticalSolutions) {
  TpccConfig cfg;
  cfg.warehouses = 4;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 30;
  cfg.initial_orders_per_district = 2;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(4000, 7);

  struct Run {
    std::string tables;
    std::string chosen_attr;
    uint64_t evaluated = 0;
    double best_train_cost = 0.0;
    std::vector<size_t> class_shapes;
  };
  auto run_with = [&](bool columnar, int32_t threads) {
    JecbOptions opt;
    opt.num_partitions = 8;
    opt.num_threads = threads;
    opt.columnar = columnar;
    Result<JecbResult> res =
        Jecb(opt).Partition(bundle.db.get(), bundle.procedures, bundle.trace);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    Run run;
    run.tables = res.value().solution.Describe(bundle.db->schema());
    run.chosen_attr = res.value().combiner_report.chosen_attr;
    run.evaluated = res.value().combiner_report.evaluated_combinations;
    run.best_train_cost = res.value().combiner_report.best_train_cost;
    for (const auto& cls : res.value().classes) {
      run.class_shapes.push_back(cls.total_solutions.size());
      run.class_shapes.push_back(cls.partial_solutions.size());
    }
    return run;
  };

  Run legacy = run_with(false, 1);
  EXPECT_FALSE(legacy.chosen_attr.empty());
  for (int32_t threads : {1, 4, 8}) {
    Run columnar = run_with(true, threads);
    EXPECT_EQ(columnar.tables, legacy.tables) << "threads=" << threads;
    EXPECT_EQ(columnar.chosen_attr, legacy.chosen_attr) << "threads=" << threads;
    EXPECT_EQ(columnar.evaluated, legacy.evaluated) << "threads=" << threads;
    EXPECT_EQ(columnar.best_train_cost, legacy.best_train_cost)
        << "threads=" << threads;
    EXPECT_EQ(columnar.class_shapes, legacy.class_shapes) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace jecb
