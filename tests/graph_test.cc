#include <gtest/gtest.h>

#include <random>

#include "graph/partitioner.h"

namespace jecb {
namespace {

TEST(GraphBuilderTest, MergesParallelEdges) {
  GraphBuilder b(3, 1);
  b.AddEdge(0, 1, 2);
  b.AddEdge(1, 0, 3);  // same edge, reversed
  b.AddEdge(1, 2, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  ASSERT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.neighbors_begin(0)->node, 1u);
  EXPECT_EQ(g.neighbors_begin(0)->weight, 5u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(GraphBuilderTest, DropsSelfLoops) {
  GraphBuilder b(2, 1);
  b.AddEdge(0, 0, 10);
  b.AddEdge(0, 1, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, NodeWeights) {
  GraphBuilder b(2, 5);
  b.AddNodeWeight(0, 3);
  b.SetNodeWeight(1, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.node_weight(0), 8u);
  EXPECT_EQ(g.node_weight(1), 1u);
  EXPECT_EQ(g.total_node_weight(), 9u);
}

TEST(CutWeightTest, CountsCrossEdges) {
  GraphBuilder b(4, 1);
  b.AddEdge(0, 1, 5);
  b.AddEdge(2, 3, 7);
  b.AddEdge(1, 2, 2);
  Graph g = b.Build();
  EXPECT_EQ(CutWeight(g, {0, 0, 1, 1}), 2u);
  EXPECT_EQ(CutWeight(g, {0, 1, 0, 1}), 14u);
  EXPECT_EQ(CutWeight(g, {0, 0, 0, 0}), 0u);
}

TEST(PartitionerTest, TrivialCases) {
  GraphBuilder b(5, 1);
  Graph g = b.Build();
  GraphPartitionOptions opt;
  opt.num_parts = 1;
  EXPECT_EQ(PartitionGraph(g, opt), (std::vector<int32_t>(5, 0)));
  Graph empty = GraphBuilder(0, 1).Build();
  opt.num_parts = 4;
  EXPECT_TRUE(PartitionGraph(empty, opt).empty());
}

/// Builds k well-separated clusters with weak random inter-cluster edges.
Graph ClusteredGraph(int clusters, int per_cluster, uint64_t seed) {
  std::mt19937_64 rng(seed);
  GraphBuilder b(static_cast<size_t>(clusters) * per_cluster, 1);
  for (int c = 0; c < clusters; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      for (int j = 0; j < 6; ++j) {
        b.AddEdge(c * per_cluster + i,
                  c * per_cluster + static_cast<NodeId>(rng() % per_cluster), 3);
      }
    }
  }
  for (int e = 0; e < clusters * per_cluster / 4; ++e) {
    b.AddEdge(static_cast<NodeId>(rng() % (clusters * per_cluster)),
              static_cast<NodeId>(rng() % (clusters * per_cluster)), 1);
  }
  return b.Build();
}

// Property sweep: the partitioner must respect balance and recover planted
// clusters across partition counts and seeds.
class PartitionerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(PartitionerPropertyTest, BalancedAndClusterPure) {
  auto [k, seed] = GetParam();
  Graph g = ClusteredGraph(k, 120, seed);
  GraphPartitionOptions opt;
  opt.num_parts = k;
  opt.seed = seed;
  auto part = PartitionGraph(g, opt);
  ASSERT_EQ(part.size(), g.num_nodes());
  for (int32_t p : part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, k);
  }
  PartitionQuality q = MeasurePartition(g, part, k);
  EXPECT_LE(q.imbalance, opt.balance_tolerance + 0.05);

  // Each planted cluster should land (almost) entirely in one partition.
  double pure = 0;
  for (int c = 0; c < k; ++c) {
    std::vector<int> counts(k, 0);
    for (int i = 0; i < 120; ++i) ++counts[part[c * 120 + i]];
    pure += *std::max_element(counts.begin(), counts.end());
  }
  EXPECT_GT(pure / static_cast<double>(g.num_nodes()), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionerPropertyTest,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(1u, 7u, 42u)));

TEST(PartitionerTest, IsolatedComponentsStayBalanced) {
  // TATP-like: many small disconnected cliques.
  GraphBuilder b(300, 1);
  for (int c = 0; c < 100; ++c) {
    b.AddEdge(3 * c, 3 * c + 1, 2);
    b.AddEdge(3 * c, 3 * c + 2, 2);
    b.AddEdge(3 * c + 1, 3 * c + 2, 2);
  }
  Graph g = b.Build();
  GraphPartitionOptions opt;
  opt.num_parts = 8;
  auto part = PartitionGraph(g, opt);
  PartitionQuality q = MeasurePartition(g, part, 8);
  EXPECT_EQ(q.cut, 0u) << "cliques must never be split";
  EXPECT_LE(q.imbalance, 1.2);
}

TEST(PartitionerTest, DeterministicForFixedSeed) {
  Graph g = ClusteredGraph(4, 50, 3);
  GraphPartitionOptions opt;
  opt.num_parts = 4;
  opt.seed = 123;
  EXPECT_EQ(PartitionGraph(g, opt), PartitionGraph(g, opt));
}

TEST(PartitionerTest, RefinementImprovesOverRandom) {
  Graph g = ClusteredGraph(4, 100, 9);
  GraphPartitionOptions opt;
  opt.num_parts = 4;
  auto part = PartitionGraph(g, opt);
  // Random assignment cuts ~3/4 of edges; the partitioner should do far
  // better on a clustered graph.
  std::mt19937_64 rng(1);
  std::vector<int32_t> random(g.num_nodes());
  for (auto& p : random) p = static_cast<int32_t>(rng() % 4);
  EXPECT_LT(CutWeight(g, part), CutWeight(g, random) / 4);
}

}  // namespace
}  // namespace jecb
