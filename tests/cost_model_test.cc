#include <gtest/gtest.h>

#include "jecb/jecb.h"
#include "partition/cost_model.h"
#include "test_util.h"

namespace jecb {
namespace {

EvalResult MakeEval(uint64_t total, uint64_t distributed, uint64_t touched,
                    std::vector<uint64_t> load) {
  EvalResult r;
  r.total_txns = total;
  r.distributed_txns = distributed;
  r.partitions_touched = touched;
  r.partition_load = std::move(load);
  return r;
}

TEST(CostModelTest, DistributedFractionMatchesDefinitionSix) {
  DistributedFractionCost model;
  EXPECT_DOUBLE_EQ(model.Cost(MakeEval(100, 25, 50, {1, 1})), 0.25);
  EXPECT_DOUBLE_EQ(model.Cost(MakeEval(0, 0, 0, {})), 0.0);
  EXPECT_EQ(model.name(), "distributed-fraction");
}

TEST(CostModelTest, SitesTouchedCountsExtraSites) {
  SitesTouchedCost model;
  // 10 distributed txns touching 2 partitions each: 10 extra sites / 100.
  EXPECT_DOUBLE_EQ(model.Cost(MakeEval(100, 10, 20, {1, 1})), 0.10);
  // Same distributed count but 5 partitions each: 4x the cost.
  EXPECT_DOUBLE_EQ(model.Cost(MakeEval(100, 10, 50, {1, 1})), 0.40);
  // The plain fraction cannot tell these apart.
  DistributedFractionCost plain;
  EXPECT_DOUBLE_EQ(plain.Cost(MakeEval(100, 10, 20, {1, 1})),
                   plain.Cost(MakeEval(100, 10, 50, {1, 1})));
}

TEST(CostModelTest, WeightedRuntimeAllLocalIsOne) {
  WeightedRuntimeCost model(5.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(model.Cost(MakeEval(100, 0, 0, {50, 50})), 1.0);
}

TEST(CostModelTest, WeightedRuntimePenalizesDistribution) {
  WeightedRuntimeCost model(5.0, 1.0, 0.0);
  // 10 distributed (2 sites each): work = 90 + 10*5 + 10*1 = 150 -> 1.5.
  EXPECT_DOUBLE_EQ(model.Cost(MakeEval(100, 10, 20, {50, 50})), 1.5);
}

TEST(CostModelTest, WeightedRuntimePenalizesSkew) {
  WeightedRuntimeCost model(5.0, 1.0, 0.5);
  double balanced = model.Cost(MakeEval(100, 0, 0, {50, 50}));
  double skewed = model.Cost(MakeEval(100, 0, 0, {100, 0}));
  EXPECT_GT(skewed, balanced);
}

TEST(CostModelTest, CombinerAcceptsCustomModel) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace = testing::MakeCustInfoTrace(fixture, 6);
  for (auto& txn : trace.mutable_transactions()) {
    for (auto& a : txn.accesses) a.write = true;
  }
  auto procs = sql::ParseProcedures(testing::CustInfoSql()).value();
  JecbOptions opt;
  opt.num_partitions = 2;
  opt.combiner.cost_model = std::make_shared<WeightedRuntimeCost>();
  auto res = Jecb(opt).Partition(fixture.db.get(), procs, trace);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  // All transactions local: runtime cost 1.0 * (1 + skew penalty) — and the
  // chosen attribute is still the customer id.
  EXPECT_NE(res.value().combiner_report.chosen_attr.find("CA_C_ID"),
            std::string::npos);
  EXPECT_GE(res.value().combiner_report.best_train_cost, 1.0);
}

}  // namespace
}  // namespace jecb
