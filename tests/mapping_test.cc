#include <gtest/gtest.h>

#include <cmath>

#include "partition/mapping.h"

namespace jecb {
namespace {

// Parameterized over partition counts: every mapping must stay in range and
// be deterministic.
class MappingRangeTest : public ::testing::TestWithParam<int32_t> {};

TEST_P(MappingRangeTest, HashStaysInRangeAndIsDeterministic) {
  int32_t k = GetParam();
  HashMapping m(k);
  EXPECT_EQ(m.num_partitions(), k);
  for (int64_t v = -50; v < 200; ++v) {
    int32_t p = m.Map(Value(v));
    EXPECT_GE(p, 0);
    EXPECT_LT(p, k);
    EXPECT_EQ(p, m.Map(Value(v)));
  }
  EXPECT_GE(m.Map(Value("some-symbol")), 0);
}

TEST_P(MappingRangeTest, RangeStaysInRange) {
  int32_t k = GetParam();
  RangeMapping m(k, 0, 999);
  for (int64_t v : {-10L, 0L, 1L, 500L, 999L, 5000L}) {
    int32_t p = m.Map(Value(v));
    EXPECT_GE(p, 0);
    EXPECT_LT(p, k);
  }
}

TEST_P(MappingRangeTest, RangeIsMonotone) {
  int32_t k = GetParam();
  RangeMapping m(k, 0, 9999);
  int32_t prev = 0;
  for (int64_t v = 0; v < 10000; v += 7) {
    int32_t p = m.Map(Value(v));
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST_P(MappingRangeTest, HashIsRoughlyBalanced) {
  int32_t k = GetParam();
  HashMapping m(k);
  std::vector<int> counts(k, 0);
  const int n = 20000;
  for (int64_t v = 0; v < n; ++v) ++counts[m.Map(Value(v))];
  for (int32_t p = 0; p < k; ++p) {
    double mean = static_cast<double>(n) / k;
    double tol = std::max(mean * 0.25, 6.0 * std::sqrt(mean));
    EXPECT_NEAR(counts[p], mean, tol) << "partition " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, MappingRangeTest, ::testing::Values(2, 3, 8, 64, 1024));

TEST(RangeMappingTest, EqualWidthBuckets) {
  RangeMapping m(4, 0, 99);
  EXPECT_EQ(m.Map(Value(0)), 0);
  EXPECT_EQ(m.Map(Value(24)), 0);
  EXPECT_EQ(m.Map(Value(25)), 1);
  EXPECT_EQ(m.Map(Value(99)), 3);
}

TEST(RangeMappingTest, NonIntegerFallsBackToHash) {
  RangeMapping m(8, 0, 99);
  int32_t p = m.Map(Value("abc"));
  EXPECT_GE(p, 0);
  EXPECT_LT(p, 8);
}

TEST(RangeMappingTest, KeepsNearbyValuesTogether) {
  RangeMapping m(8, 0, 100000);
  // A narrow window should mostly fall in one bucket.
  int same = 0;
  for (int64_t v = 40000; v < 40050; ++v) {
    if (m.Map(Value(v)) == m.Map(Value(int64_t(40000)))) ++same;
  }
  EXPECT_EQ(same, 50);
}

TEST(LookupMappingTest, MapsKnownValuesExactly) {
  std::unordered_map<Value, int32_t, ValueHashFunctor> table;
  table[Value(1)] = 3;
  table[Value("x")] = 5;
  LookupMapping m(8, std::move(table));
  EXPECT_EQ(m.Map(Value(1)), 3);
  EXPECT_EQ(m.Map(Value("x")), 5);
  EXPECT_EQ(m.table_size(), 2u);
}

TEST(LookupMappingTest, UnknownValuesFallBackToHash) {
  LookupMapping m(8, {});
  HashMapping h(8);
  for (int64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(m.Map(Value(v)), h.Map(Value(v)));
  }
}

TEST(MappingTest, Names) {
  EXPECT_EQ(HashMapping(2).name(), "hash");
  EXPECT_EQ(RangeMapping(2, 0, 1).name(), "range");
  EXPECT_EQ(LookupMapping(2, {}).name(), "lookup");
}

}  // namespace
}  // namespace jecb
