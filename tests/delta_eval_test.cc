// Delta evaluation contract (partition/delta_evaluator.h): the incremental
// result must be bit-identical to a full Evaluate() of the candidate — for
// empty affected sets, across the >8-distinct-partition heap spill, through
// repeated apply/revert round-trips, at every thread count, and under every
// scan kernel. Most tests additionally run with set_self_check(true), which
// re-proves the identity inside the evaluator on every candidate.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "horticulture/horticulture.h"
#include "jecb/jecb.h"
#include "partition/delta_evaluator.h"
#include "partition/evaluator.h"
#include "partition/partition_scan.h"
#include "test_util.h"
#include "trace/flat_trace.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"

namespace jecb {
namespace {

void ExpectEvalEqual(const EvalResult& a, const EvalResult& b) {
  EXPECT_EQ(a.total_txns, b.total_txns);
  EXPECT_EQ(a.distributed_txns, b.distributed_txns);
  EXPECT_EQ(a.partitions_touched, b.partitions_touched);
  EXPECT_EQ(a.class_total, b.class_total);
  EXPECT_EQ(a.class_distributed, b.class_distributed);
  EXPECT_EQ(a.partition_load, b.partition_load);
  EXPECT_TRUE(a == b);  // the defaulted operator must agree field-wise
}

/// All-replicated solution over `db`'s schema.
DatabaseSolution ReplicateAll(const Database& db, int32_t k) {
  DatabaseSolution sol(k, db.schema().num_tables());
  auto replicated = std::make_shared<ReplicatedTable>();
  for (size_t t = 0; t < db.schema().num_tables(); ++t) {
    sol.Set(static_cast<TableId>(t), replicated);
  }
  return sol;
}

TEST(DeltaEvalTest, MatchesFullEvaluateOnCustInfo) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace = testing::MakeCustInfoTrace(fixture, 6);
  FlatTrace flat = FlatTrace::FromTrace(trace);
  const Database& db = *fixture.db;

  DatabaseSolution base = MakeNaiveHashSolution(db, 4);
  DeltaEvaluator delta(&db, &flat);
  delta.set_self_check(true);
  const EvalResult& base_ev = delta.Rebase(base);
  ExpectEvalEqual(base_ev, Evaluate(db, base, flat));

  // Change one table at a time to replication; the delta result must match
  // the full evaluation of the modified solution exactly.
  auto replicated = std::make_shared<ReplicatedTable>();
  for (size_t t = 0; t < db.schema().num_tables(); ++t) {
    DatabaseSolution cand = base;
    cand.Set(static_cast<TableId>(t), replicated);
    const std::array<TableId, 1> changed = {static_cast<TableId>(t)};
    EvalResult dv = delta.EvaluateCandidate(cand, changed);
    ExpectEvalEqual(dv, Evaluate(db, cand, flat));
  }
}

TEST(DeltaEvalTest, EmptyAffectedSetReturnsBaseExactly) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace = testing::MakeCustInfoTrace(fixture, 3);
  FlatTrace flat = FlatTrace::FromTrace(trace);
  const Database& db = *fixture.db;

  DatabaseSolution base = MakeNaiveHashSolution(db, 4);
  DeltaEvaluator delta(&db, &flat);
  delta.set_self_check(true);
  EvalResult base_ev = delta.Rebase(base);

  // CUSTOMER is never accessed by the CustInfo trace (only its accounts,
  // trades and holding summaries are read), so "changing" it affects no
  // transaction: the candidate must score exactly the base result.
  Result<TableId> customer = db.schema().FindTable("CUSTOMER");
  ASSERT_TRUE(customer.ok());
  ASSERT_EQ(delta.AffectedTxns(customer.value()), 0u);
  DatabaseSolution cand = base;
  cand.Set(customer.value(), std::make_shared<ReplicatedTable>());
  const std::array<TableId, 1> changed = {customer.value()};
  ExpectEvalEqual(delta.EvaluateCandidate(cand, changed), base_ev);

  // An empty changed list is a no-op too.
  ExpectEvalEqual(delta.EvaluateCandidate(base, {}), base_ev);
}

TEST(DeltaEvalTest, EmptyClassViewScansToZero) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace = testing::MakeCustInfoTrace(fixture, 2);
  FlatTrace flat = FlatTrace::FromTrace(trace);
  // Class id 1 does not exist: FilterClass yields an empty view, which the
  // scan must handle (zero counters, correctly sized vectors).
  TraceView empty = TraceView(&flat).FilterClass(1);
  ASSERT_TRUE(empty.empty());
  DatabaseSolution sol = MakeNaiveHashSolution(*fixture.db, 4);
  std::vector<int32_t> part = ResolvePartitions(*fixture.db, sol, flat);
  EvalResult ev = EvaluateWithPartitions(empty, part, 4);
  EXPECT_EQ(ev.total_txns, 0u);
  EXPECT_EQ(ev.distributed_txns, 0u);
  EXPECT_EQ(ev.class_total, std::vector<uint64_t>(flat.num_classes(), 0));
  EXPECT_EQ(ev.partition_load, std::vector<uint64_t>(4, 0));
}

TEST(DeltaEvalTest, FlipsDistributedAcrossEightPartitionHeapSpill) {
  // One table, 16 rows, and transactions reading all 16 tuples: under a
  // 16-way per-row placement every such transaction touches 16 distinct
  // partitions — past the evaluator's 8-slot inline buffer, into the heap
  // spill. Toggling the table between replication (0 partitions, local) and
  // per-row placement (16, distributed) must stay exact in both directions.
  Schema schema;
  TableId tid = schema.AddTable("WIDE").value();
  CheckOk(schema.AddColumn(tid, "ID", ValueType::kInt64), "delta test");
  CheckOk(schema.SetPrimaryKey(tid, {"ID"}), "delta test");
  Database db(schema);
  std::vector<TupleId> rows;
  for (int64_t i = 0; i < 16; ++i) rows.push_back(db.MustInsert("WIDE", {i}));

  Trace trace;
  uint32_t cls = trace.InternClass("ScanAll");
  for (int rep = 0; rep < 5; ++rep) {
    Transaction txn;
    txn.class_id = cls;
    for (TupleId r : rows) txn.Read(r);
    trace.Add(std::move(txn));
  }
  FlatTrace flat = FlatTrace::FromTrace(trace);

  const int32_t k = 16;
  DatabaseSolution replicated = ReplicateAll(db, k);
  DatabaseSolution per_row = ReplicateAll(db, k);
  per_row.Set(tid, std::make_shared<CallbackPartitioner>(
                       [](const Database&, TupleId t) {
                         return static_cast<int32_t>(t.row % 16);
                       },
                       "row % 16"));

  DeltaEvaluator delta(&db, &flat);
  delta.set_self_check(true);
  const std::array<TableId, 1> changed = {tid};

  // Replicated base -> per-row candidate: every txn becomes distributed,
  // touching 16 partitions (spill exercised in the candidate scan).
  delta.Rebase(replicated);
  EvalResult spread = delta.EvaluateCandidate(per_row, changed);
  ExpectEvalEqual(spread, Evaluate(db, per_row, flat));
  EXPECT_EQ(spread.distributed_txns, 5u);
  EXPECT_EQ(spread.partitions_touched, 5u * 16u);

  // Per-row base -> replicated candidate: the spill now happens in the
  // base-side subtraction; everything flips back to local.
  delta.Rebase(per_row);
  EvalResult local = delta.EvaluateCandidate(replicated, changed);
  ExpectEvalEqual(local, Evaluate(db, replicated, flat));
  EXPECT_EQ(local.distributed_txns, 0u);
}

TEST(DeltaEvalTest, RepeatedApplyRevertRoundTripsAreExact) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace = testing::MakeCustInfoTrace(fixture, 8);
  FlatTrace flat = FlatTrace::FromTrace(trace);
  const Database& db = *fixture.db;

  DatabaseSolution base = MakeNaiveHashSolution(db, 8);
  Result<TableId> trade = db.schema().FindTable("TRADE");
  ASSERT_TRUE(trade.ok());
  DatabaseSolution cand = base;
  cand.Set(trade.value(), std::make_shared<ReplicatedTable>());

  DeltaEvaluator delta(&db, &flat);
  delta.set_self_check(true);
  EvalResult base_ev = delta.Rebase(base);
  EvalResult cand_full = Evaluate(db, cand, flat);

  // The scratch mirror is patched and restored on every call: alternating
  // candidate and base evaluations many times must keep returning the exact
  // original results (any leaked patch would corrupt all later calls).
  const std::array<TableId, 1> changed = {trade.value()};
  for (int i = 0; i < 10; ++i) {
    ExpectEvalEqual(delta.EvaluateCandidate(cand, changed), cand_full);
    ExpectEvalEqual(delta.EvaluateCandidate(base, changed), base_ev);
  }
}

TEST(DeltaEvalTest, ScalarAndSimdKernelsAreBitIdentical) {
  TpccConfig cfg;
  cfg.warehouses = 4;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 30;
  cfg.initial_orders_per_district = 2;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(8000, 7);
  FlatTrace flat = FlatTrace::FromTrace(bundle.trace);

  DatabaseSolution solution = MakeNaiveHashSolution(*bundle.db, 8);
  EvalResult scalar =
      Evaluate(*bundle.db, solution, flat, nullptr, ScanKernel::kScalar);
  EXPECT_GT(scalar.distributed_txns, 0u);
  // Unsupported kernels clamp to the best available one, so requesting
  // kSse2/kAvx2 is safe on any host; on x86-64 both run their vector paths.
  for (ScanKernel k : {ScanKernel::kSse2, ScanKernel::kAvx2, ScanKernel::kAuto}) {
    ExpectEvalEqual(Evaluate(*bundle.db, solution, flat, nullptr, k), scalar);
  }
  // And with a pool: chunk merging is kernel-independent.
  ThreadPool pool(4);
  for (ScanKernel k : {ScanKernel::kScalar, ScanKernel::kAuto}) {
    ExpectEvalEqual(Evaluate(*bundle.db, solution, flat, &pool, k), scalar);
  }
}

/// Full-pipeline determinism on TPC-C: delta+SIMD on, across 1/4/8 threads,
/// against the non-delta scalar reference.
TEST(DeltaPipelineTest, JecbTpccDeterministicAcrossThreadsAndModes) {
  TpccConfig cfg;
  cfg.warehouses = 4;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 30;
  cfg.initial_orders_per_district = 2;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(6000, 7);

  auto run_with = [&](int32_t threads, bool delta, bool simd) {
    JecbOptions opt;
    opt.num_partitions = 8;
    opt.num_threads = threads;
    opt.delta = delta;
    opt.simd = simd;
    opt.delta_self_check = delta;  // prove the identity on every combination
    Result<JecbResult> res =
        Jecb(opt).Partition(bundle.db.get(), bundle.procedures, bundle.trace);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.value();
  };

  JecbResult ref = run_with(1, false, false);
  const std::string ref_tables = ref.solution.Describe(bundle.db->schema());
  EXPECT_FALSE(ref.combiner_report.chosen_attr.empty());
  struct Mode {
    int32_t threads;
    bool delta, simd;
  };
  for (Mode m : {Mode{1, true, true}, Mode{4, true, true}, Mode{8, true, true},
                 Mode{4, true, false}, Mode{4, false, true}}) {
    JecbResult got = run_with(m.threads, m.delta, m.simd);
    EXPECT_EQ(got.solution.Describe(bundle.db->schema()), ref_tables)
        << "threads=" << m.threads << " delta=" << m.delta << " simd=" << m.simd;
    EXPECT_EQ(got.combiner_report.chosen_attr, ref.combiner_report.chosen_attr);
    EXPECT_EQ(got.combiner_report.evaluated_combinations,
              ref.combiner_report.evaluated_combinations);
    EXPECT_EQ(got.combiner_report.best_train_cost,
              ref.combiner_report.best_train_cost);
  }
}

/// Same contract for the Horticulture LNS on TATP: the whole search
/// trajectory (final design, costs, evaluation count) must be identical
/// with and without delta scoring, at 1/4/8 threads.
TEST(DeltaPipelineTest, HorticultureTatpDeterministicAcrossThreadsAndModes) {
  TatpConfig cfg;
  WorkloadBundle bundle = TatpWorkload(cfg).Make(4000, 13);

  auto run_with = [&](int32_t threads, bool delta) {
    HorticultureOptions opt;
    opt.num_partitions = 8;
    opt.num_threads = threads;
    opt.rounds = 6;
    opt.sample_txns = 2000;
    opt.delta = delta;
    opt.delta_self_check = delta;
    Result<HorticultureResult> res =
        Horticulture(opt).Partition(bundle.db.get(), bundle.trace);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res;
  };

  Result<HorticultureResult> ref = run_with(1, false);
  const std::string ref_tables =
      ref.value().solution.Describe(bundle.db->schema());
  for (int32_t threads : {1, 4, 8}) {
    Result<HorticultureResult> got = run_with(threads, true);
    EXPECT_EQ(got.value().solution.Describe(bundle.db->schema()), ref_tables)
        << "threads=" << threads;
    EXPECT_EQ(got.value().train_cost, ref.value().train_cost);
    EXPECT_EQ(got.value().model_cost, ref.value().model_cost);
    EXPECT_EQ(got.value().evaluations, ref.value().evaluations);
  }
}

}  // namespace
}  // namespace jecb
