#include <gtest/gtest.h>

#include <algorithm>

#include "partition/router.h"
#include "test_util.h"

namespace jecb {
namespace {

class RouterTest : public ::testing::Test {
 protected:
  RouterTest()
      : fixture_(testing::MakeCustInfoDb()),
        solution_(2, fixture_.db->schema().num_tables()) {
    const Schema& s = schema();
    auto mapping = std::make_shared<RangeMapping>(2, 1, 2);
    FkIdx trade_ca = 0;
    for (FkIdx f = 0; f < s.foreign_keys().size(); ++f) {
      if (s.foreign_keys()[f].table == s.FindTable("TRADE").value()) trade_ca = f;
    }
    JoinPath trade_path;
    trade_path.source_table = s.FindTable("TRADE").value();
    trade_path.hops = {trade_ca};
    trade_path.dest = s.ResolveQualified("CUSTOMER_ACCOUNT.CA_C_ID").value();
    solution_.Set(trade_path.source_table,
                  std::make_shared<JoinPathPartitioner>(trade_path, mapping));
    JoinPath ca_path;
    ca_path.source_table = s.FindTable("CUSTOMER_ACCOUNT").value();
    ca_path.dest = s.ResolveQualified("CUSTOMER_ACCOUNT.CA_C_ID").value();
    solution_.Set(ca_path.source_table,
                  std::make_shared<JoinPathPartitioner>(ca_path, mapping));
    solution_.Set(s.FindTable("CUSTOMER").value(), std::make_shared<ReplicatedTable>());
  }

  const Schema& schema() const { return fixture_.db->schema(); }

  testing::CustInfoDb fixture_;
  DatabaseSolution solution_;
};

TEST_F(RouterTest, RoutesByPartitioningAttribute) {
  Router router(fixture_.db.get(), &solution_);
  ColumnRef ca_c_id = schema().ResolveQualified("CUSTOMER_ACCOUNT.CA_C_ID").value();
  EXPECT_EQ(router.RouteValue(ca_c_id, Value(1)), (std::vector<int32_t>{0}));
  EXPECT_EQ(router.RouteValue(ca_c_id, Value(2)), (std::vector<int32_t>{1}));
}

TEST_F(RouterTest, RoutesByFinerAttribute) {
  Router router(fixture_.db.get(), &solution_);
  // CA_ID is finer than CA_C_ID: each account maps to one partition.
  ColumnRef ca_id = schema().ResolveQualified("CUSTOMER_ACCOUNT.CA_ID").value();
  EXPECT_EQ(router.RouteValue(ca_id, Value(1)), (std::vector<int32_t>{0}));
  EXPECT_EQ(router.RouteValue(ca_id, Value(7)), (std::vector<int32_t>{1}));
  EXPECT_EQ(router.RouteValue(ca_id, Value(8)), (std::vector<int32_t>{0}));
  EXPECT_EQ(router.RouteValue(ca_id, Value(10)), (std::vector<int32_t>{1}));
}

TEST_F(RouterTest, RoutesByTradeKey) {
  Router router(fixture_.db.get(), &solution_);
  ColumnRef t_id = schema().ResolveQualified("TRADE.T_ID").value();
  EXPECT_EQ(router.RouteValue(t_id, Value(1)), (std::vector<int32_t>{0}));
  EXPECT_EQ(router.RouteValue(t_id, Value(2)), (std::vector<int32_t>{1}));
}

TEST_F(RouterTest, UnknownValueBroadcasts) {
  Router router(fixture_.db.get(), &solution_);
  ColumnRef t_id = schema().ResolveQualified("TRADE.T_ID").value();
  EXPECT_EQ(router.RouteValue(t_id, Value(999)), router.Broadcast());
  EXPECT_EQ(router.Broadcast().size(), 2u);
}

TEST_F(RouterTest, NonUniqueAttributeMayMapToManyPartitions) {
  Router router(fixture_.db.get(), &solution_);
  // T_QTY = 1 occurs in trades of both customers.
  ColumnRef t_qty = schema().ResolveQualified("TRADE.T_QTY").value();
  auto parts = router.RouteValue(t_qty, Value(1));
  EXPECT_EQ(parts.size(), 2u);
}

TEST_F(RouterTest, LookupTableSizeTracksDistinctValues) {
  Router router(fixture_.db.get(), &solution_);
  // The coarser the attribute, the smaller the lookup table (paper Sec. 3).
  ColumnRef t_id = schema().ResolveQualified("TRADE.T_ID").value();
  ColumnRef t_ca = schema().ResolveQualified("TRADE.T_CA_ID").value();
  EXPECT_EQ(router.LookupTableSize(t_id), 8u);
  EXPECT_EQ(router.LookupTableSize(t_ca), 4u);
  EXPECT_GT(router.LookupTableSize(t_id), router.LookupTableSize(t_ca));
}

TEST_F(RouterTest, ReplicatedTableRoutesToAnyPartition) {
  Router router(fixture_.db.get(), &solution_);
  ColumnRef c_id = schema().ResolveQualified("CUSTOMER.C_ID").value();
  auto parts = router.RouteValue(c_id, Value(1));
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], kReplicated);
}

}  // namespace
}  // namespace jecb
