#include <gtest/gtest.h>

#include "jecb/attr_lattice.h"
#include "test_util.h"

namespace jecb {
namespace {

class LatticeTest : public ::testing::Test {
 protected:
  LatticeTest() : schema_(testing::MakeCustInfoSchema()), lattice_(&schema_) {}

  ColumnRef Ref(const char* qualified) const {
    return schema_.ResolveQualified(qualified).value();
  }

  Schema schema_;
  AttributeLattice lattice_;
};

TEST_F(LatticeTest, ForeignKeyPairsAreEquivalent) {
  // Example 8: CA_ID has the same granularity as T_CA_ID and HS_CA_ID.
  EXPECT_TRUE(lattice_.Equivalent(Ref("CUSTOMER_ACCOUNT.CA_ID"), Ref("TRADE.T_CA_ID")));
  EXPECT_TRUE(lattice_.Equivalent(Ref("CUSTOMER_ACCOUNT.CA_ID"),
                                  Ref("HOLDING_SUMMARY.HS_CA_ID")));
  EXPECT_TRUE(lattice_.Equivalent(Ref("CUSTOMER_ACCOUNT.CA_C_ID"), Ref("CUSTOMER.C_ID")));
}

TEST_F(LatticeTest, SiblingsThroughSharedParentAreNotEquivalent) {
  // T_CA_ID and HS_CA_ID both reference CA_ID, but a chain may not reverse
  // direction through the shared parent (the paper's Example 9 point).
  EXPECT_FALSE(
      lattice_.Equivalent(Ref("TRADE.T_CA_ID"), Ref("HOLDING_SUMMARY.HS_CA_ID")));
}

TEST_F(LatticeTest, CoarserAlongJoinPaths) {
  // Example 8: CA_C_ID is coarser than T_ID.
  EXPECT_TRUE(lattice_.IsCoarser(Ref("CUSTOMER_ACCOUNT.CA_C_ID"), Ref("TRADE.T_ID")));
  EXPECT_FALSE(lattice_.IsCoarser(Ref("TRADE.T_ID"), Ref("CUSTOMER_ACCOUNT.CA_C_ID")));
  // CA_C_ID is coarser than CA_ID (intra-table step from the PK).
  EXPECT_TRUE(
      lattice_.IsCoarser(Ref("CUSTOMER_ACCOUNT.CA_C_ID"), Ref("CUSTOMER_ACCOUNT.CA_ID")));
  // C_TAX_ID is coarser than C_ID (alternate key, Example 7's discussion).
  EXPECT_TRUE(lattice_.IsCoarser(Ref("CUSTOMER.C_TAX_ID"), Ref("CUSTOMER.C_ID")));
}

TEST_F(LatticeTest, IncompatibleAttributes) {
  // Example 8: T_QTY is not compatible with CA_C_ID.
  EXPECT_FALSE(
      lattice_.Compatible(Ref("TRADE.T_QTY"), Ref("CUSTOMER_ACCOUNT.CA_C_ID")));
  EXPECT_FALSE(lattice_.Equivalent(Ref("TRADE.T_QTY"), Ref("TRADE.T_ID")));
  // But T_QTY IS coarser than T_ID (the PK determines every column).
  EXPECT_TRUE(lattice_.IsCoarser(Ref("TRADE.T_QTY"), Ref("TRADE.T_ID")));
}

TEST_F(LatticeTest, CoarserIsNotReflexive) {
  EXPECT_FALSE(lattice_.IsCoarser(Ref("TRADE.T_ID"), Ref("TRADE.T_ID")));
  EXPECT_TRUE(lattice_.Compatible(Ref("TRADE.T_ID"), Ref("TRADE.T_ID")));  // equivalent
}

TEST_F(LatticeTest, CompositeKeyColumnsGetNoIntraMoves) {
  // HS_S_SYMB alone is not a key of HOLDING_SUMMARY: it must not reach
  // HS_CA_ID by an intra-table move.
  EXPECT_FALSE(lattice_.IsCoarser(Ref("HOLDING_SUMMARY.HS_CA_ID"),
                                  Ref("HOLDING_SUMMARY.HS_S_SYMB")));
  EXPECT_FALSE(lattice_.Compatible(Ref("HOLDING_SUMMARY.HS_S_SYMB"),
                                   Ref("HOLDING_SUMMARY.HS_CA_ID")));
}

TEST_F(LatticeTest, EquivClassContents) {
  auto cls = lattice_.EquivClass(Ref("CUSTOMER_ACCOUNT.CA_ID"));
  std::set<ColumnRef> got(cls.begin(), cls.end());
  EXPECT_TRUE(got.count(Ref("CUSTOMER_ACCOUNT.CA_ID")));
  EXPECT_TRUE(got.count(Ref("TRADE.T_CA_ID")));
  EXPECT_TRUE(got.count(Ref("HOLDING_SUMMARY.HS_CA_ID")));
  EXPECT_FALSE(got.count(Ref("CUSTOMER.C_ID")));
  EXPECT_EQ(got.size(), 3u);
}

TEST_F(LatticeTest, ExtendPathByFkHop) {
  // HS -> HS_CA_ID extended to the CA_C_ID granularity: one FK hop to CA.
  JoinPath base;
  base.source_table = schema_.FindTable("HOLDING_SUMMARY").value();
  base.dest = Ref("HOLDING_SUMMARY.HS_CA_ID");
  auto ext = lattice_.ExtendPath(base, Ref("CUSTOMER_ACCOUNT.CA_C_ID"));
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  EXPECT_EQ(ext.value().hops.size(), 1u);
  EXPECT_EQ(ext.value().dest, Ref("CUSTOMER_ACCOUNT.CA_C_ID"));
}

TEST_F(LatticeTest, ExtendPathAlreadyAtTarget) {
  JoinPath base;
  base.source_table = schema_.FindTable("TRADE").value();
  base.dest = Ref("TRADE.T_CA_ID");
  // T_CA_ID is equivalent to CA_ID: no extension needed.
  auto ext = lattice_.ExtendPath(base, Ref("CUSTOMER_ACCOUNT.CA_ID"));
  ASSERT_TRUE(ext.ok());
  EXPECT_EQ(ext.value().hops.size(), 0u);
  EXPECT_EQ(ext.value().dest, Ref("TRADE.T_CA_ID"));
}

TEST_F(LatticeTest, ExtendPathIntraThenHop) {
  // TRADE -> CA (dest CA_ID) extended to C_TAX_ID: intra move to CA_C_ID is
  // not enough, needs the hop to CUSTOMER and an intra move there.
  JoinPath base;
  base.source_table = schema_.FindTable("TRADE").value();
  FkIdx trade_ca = 0;
  for (FkIdx f = 0; f < schema_.foreign_keys().size(); ++f) {
    if (schema_.foreign_keys()[f].table == base.source_table) trade_ca = f;
  }
  base.hops = {trade_ca};
  base.dest = Ref("CUSTOMER_ACCOUNT.CA_ID");
  auto ext = lattice_.ExtendPath(base, Ref("CUSTOMER.C_TAX_ID"));
  ASSERT_TRUE(ext.ok()) << ext.status().ToString();
  EXPECT_EQ(ext.value().dest, Ref("CUSTOMER.C_TAX_ID"));
  EXPECT_EQ(ext.value().hops.size(), 2u);
}

TEST_F(LatticeTest, ExtendPathMustNotJumpToSiblingColumns) {
  // From T_QTY (not a key, not an FK) there are no moves at all.
  JoinPath base;
  base.source_table = schema_.FindTable("TRADE").value();
  base.dest = Ref("TRADE.T_QTY");
  EXPECT_FALSE(lattice_.ExtendPath(base, Ref("CUSTOMER.C_ID")).ok());
}

TEST_F(LatticeTest, ExtendPathUnreachableFails) {
  // CUSTOMER.C_ID cannot be extended "down" to TRADE columns.
  JoinPath base;
  base.source_table = schema_.FindTable("CUSTOMER").value();
  base.dest = Ref("CUSTOMER.C_ID");
  EXPECT_FALSE(lattice_.ExtendPath(base, Ref("TRADE.T_QTY")).ok());
}

// The R1/R2/R3 schema of paper Example 9.
class Example9Test : public ::testing::Test {
 protected:
  Example9Test() {
    TableId r1 = schema_.AddTable("R1").value();
    CheckOk(schema_.AddColumn(r1, "X", ValueType::kInt64), "ex9");
    CheckOk(schema_.AddColumn(r1, "A", ValueType::kInt64), "ex9");
    CheckOk(schema_.SetPrimaryKey(r1, {"X"}), "ex9");
    TableId r2 = schema_.AddTable("R2").value();
    CheckOk(schema_.AddColumn(r2, "X1", ValueType::kInt64), "ex9");
    CheckOk(schema_.AddColumn(r2, "X2", ValueType::kInt64), "ex9");
    CheckOk(schema_.AddColumn(r2, "B", ValueType::kInt64), "ex9");
    CheckOk(schema_.SetPrimaryKey(r2, {"X1", "X2"}), "ex9");
    CheckOk(schema_.AddForeignKey("R2", {"X1"}, "R1", {"X"}), "ex9");
    CheckOk(schema_.AddForeignKey("R2", {"X2"}, "R1", {"X"}), "ex9");
    lattice_ = std::make_unique<AttributeLattice>(&schema_);
  }

  ColumnRef Ref(const char* qualified) const {
    return schema_.ResolveQualified(qualified).value();
  }

  Schema schema_;
  std::unique_ptr<AttributeLattice> lattice_;
};

TEST_F(Example9Test, TwoForeignKeysToSameParentAreNotEquivalent) {
  // The crux of Example 9: R2.X1 != R2.X2 even though both reference R1.X.
  EXPECT_FALSE(lattice_->Equivalent(Ref("R2.X1"), Ref("R2.X2")));
  EXPECT_TRUE(lattice_->Equivalent(Ref("R2.X1"), Ref("R1.X")));
  EXPECT_TRUE(lattice_->Equivalent(Ref("R2.X2"), Ref("R1.X")));
}

}  // namespace
}  // namespace jecb
