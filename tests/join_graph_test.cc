#include <gtest/gtest.h>

#include "jecb/join_graph.h"
#include "sql/analyzer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace jecb {
namespace {

class JoinGraphTest : public ::testing::Test {
 protected:
  JoinGraphTest() : schema_(testing::MakeCustInfoSchema()) {}

  JoinGraph Build(const std::string& sql, JoinGraphOptions options = {}) {
    auto proc = sql::ParseProcedure(sql);
    CheckOk(proc.status(), "JoinGraphTest");
    sql::AnalyzerOptions aopt;
    aopt.use_select_clause_attrs = options.use_select_clause_attrs;
    auto info = sql::AnalyzeProcedure(schema_, proc.value(), aopt);
    CheckOk(info.status(), "JoinGraphTest");
    return BuildJoinGraph(schema_, info.value(), options);
  }

  TableId Tid(const char* name) { return schema_.FindTable(name).value(); }
  ColumnRef Ref(const char* q) { return schema_.ResolveQualified(q).value(); }

  Schema schema_;
};

TEST_F(JoinGraphTest, ExplicitJoinActivatesFk) {
  JoinGraph g = Build(R"SQL(
PROCEDURE P(@c) {
  SELECT T_QTY FROM TRADE JOIN CUSTOMER_ACCOUNT ON T_CA_ID = CA_ID
    WHERE CA_C_ID = @c;
}
)SQL");
  ASSERT_EQ(g.active_fks.size(), 1u);
  EXPECT_EQ(schema_.foreign_keys()[g.active_fks[0]].table, Tid("TRADE"));
}

TEST_F(JoinGraphTest, FkBetweenUnaccessedTablesStaysInactive) {
  JoinGraph g = Build(R"SQL(
PROCEDURE P(@t) {
  SELECT T_QTY FROM TRADE WHERE T_ID = @t;
}
)SQL");
  EXPECT_TRUE(g.active_fks.empty());
  EXPECT_EQ(g.tables.size(), 1u);
}

TEST_F(JoinGraphTest, ImplicitJoinViaVariableActivatesFk) {
  JoinGraph g = Build(R"SQL(
PROCEDURE P(@t) {
  SELECT @acct = T_CA_ID FROM TRADE WHERE T_ID = @t;
  SELECT CA_C_ID FROM CUSTOMER_ACCOUNT WHERE CA_ID = @acct;
}
)SQL");
  ASSERT_EQ(g.active_fks.size(), 1u);
}

TEST_F(JoinGraphTest, SelectClauseDiscoveryToggle) {
  // Without an equijoin, activation can still come from both FK endpoints
  // appearing among accessed attributes (here: T_CA_ID in a SELECT list).
  const char* sql = R"SQL(
PROCEDURE P(@t, @a) {
  SELECT T_CA_ID FROM TRADE WHERE T_ID = @t;
  SELECT CA_C_ID FROM CUSTOMER_ACCOUNT WHERE CA_ID = @a;
}
)SQL";
  JoinGraphOptions with;
  with.use_select_clause_attrs = true;
  EXPECT_EQ(Build(sql, with).active_fks.size(), 1u);

  JoinGraphOptions without;
  without.use_select_clause_attrs = false;
  EXPECT_TRUE(Build(sql, without).active_fks.empty());
}

TEST_F(JoinGraphTest, CandidateAttributesIncludeWherePkAndFkEndpoints) {
  JoinGraph g = Build(R"SQL(
PROCEDURE P(@c) {
  SELECT T_QTY FROM TRADE JOIN CUSTOMER_ACCOUNT ON T_CA_ID = CA_ID
    WHERE CA_C_ID = @c AND T_QTY > 2;
}
)SQL");
  EXPECT_TRUE(g.candidate_attrs.count(Ref("CUSTOMER_ACCOUNT.CA_C_ID")));
  EXPECT_TRUE(g.candidate_attrs.count(Ref("TRADE.T_QTY")));      // WHERE attr
  EXPECT_TRUE(g.candidate_attrs.count(Ref("TRADE.T_CA_ID")));    // FK endpoint
  EXPECT_TRUE(g.candidate_attrs.count(Ref("CUSTOMER_ACCOUNT.CA_ID")));
  EXPECT_TRUE(g.candidate_attrs.count(Ref("TRADE.T_ID")));       // single-col PK
}

TEST_F(JoinGraphTest, ReplicatedTablesExcludedFromPartitionedSet) {
  schema_.mutable_table(Tid("CUSTOMER_ACCOUNT")).access_class =
      AccessClass::kReadOnly;
  JoinGraph g = Build(R"SQL(
PROCEDURE P(@c) {
  SELECT T_QTY FROM TRADE JOIN CUSTOMER_ACCOUNT ON T_CA_ID = CA_ID
    WHERE CA_C_ID = @c;
}
)SQL");
  EXPECT_EQ(g.tables.size(), 2u);
  EXPECT_EQ(g.partitioned_tables.size(), 1u);
  EXPECT_TRUE(g.partitioned_tables.count(Tid("TRADE")));
  // The FK into the replicated table is still active (paths may traverse it).
  EXPECT_EQ(g.active_fks.size(), 1u);
}

TEST_F(JoinGraphTest, InListStillMarksTablesAndAttrs) {
  JoinGraph g = Build(R"SQL(
PROCEDURE P(@a, @b) {
  SELECT T_QTY FROM TRADE WHERE T_ID IN (@a, @b);
}
)SQL");
  EXPECT_TRUE(g.candidate_attrs.count(Ref("TRADE.T_ID")));
  EXPECT_EQ(g.tables.size(), 1u);
}

TEST_F(JoinGraphTest, HasActiveFkHelper) {
  JoinGraph g = Build(R"SQL(
PROCEDURE P(@c) {
  SELECT T_QTY FROM TRADE JOIN CUSTOMER_ACCOUNT ON T_CA_ID = CA_ID
    WHERE CA_C_ID = @c;
}
)SQL");
  ASSERT_EQ(g.active_fks.size(), 1u);
  EXPECT_TRUE(g.HasActiveFk(g.active_fks[0]));
  EXPECT_FALSE(g.HasActiveFk(g.active_fks[0] + 1));
}

}  // namespace
}  // namespace jecb
