#include <gtest/gtest.h>

#include "horticulture/horticulture.h"
#include "partition/evaluator.h"
#include "test_util.h"

namespace jecb {
namespace {

TEST(HorticultureTest, FindsColumnPartitioningWhenOneExists) {
  // Every transaction touches one customer account's tuples: partitioning
  // TRADE by T_CA_ID and CA by CA_ID co-locates them by hash value.
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace;
  uint32_t cls = trace.InternClass("ByAccount");
  for (int rep = 0; rep < 30; ++rep) {
    for (TupleId ca : fixture.accounts) {
      Transaction txn;
      txn.class_id = cls;
      txn.Write(ca);
      int64_t ca_id = fixture.db->GetValue(ca, 0).AsInt();
      for (TupleId t : fixture.trades) {
        if (fixture.db->GetValue(t, 1).AsInt() == ca_id) txn.Write(t);
      }
      trace.Add(std::move(txn));
    }
  }
  HorticultureOptions opt;
  opt.num_partitions = 2;
  opt.rounds = 60;
  auto res = Horticulture(opt).Partition(fixture.db.get(), trace);
  ASSERT_TRUE(res.ok());
  EvalResult ev = Evaluate(*fixture.db, res.value().solution, trace);
  EXPECT_LT(ev.cost(), 0.05) << res.value().solution.Describe(fixture.db->schema());
  EXPECT_GT(res.value().evaluations, 1);
}

TEST(HorticultureTest, CannotUseJoinExtension) {
  // The CustInfo workload needs the CA_C_ID join extension for TRADE and
  // HOLDING_SUMMARY; Horticulture's per-table columns cannot express it, so
  // some transactions stay distributed (each customer owns two accounts).
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace = testing::MakeCustInfoTrace(fixture, 30);
  for (auto& txn : trace.mutable_transactions()) {
    for (auto& a : txn.accesses) a.write = true;
  }
  HorticultureOptions opt;
  opt.num_partitions = 2;
  opt.rounds = 80;
  auto res = Horticulture(opt).Partition(fixture.db.get(), trace);
  ASSERT_TRUE(res.ok());
  EvalResult ev = Evaluate(*fixture.db, res.value().solution, trace);
  // The best column design still leaves real residual cost (hash collisions
  // aside, accounts 1/8 and 7/10 only co-locate by luck).
  EXPECT_GT(ev.cost(), 0.0);
}

TEST(HorticultureTest, ReplicationChosenForReadOnlyTables) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace = testing::MakeCustInfoTrace(fixture, 10);  // read-only accesses
  HorticultureOptions opt;
  opt.num_partitions = 2;
  auto res = Horticulture(opt).Partition(fixture.db.get(), trace);
  ASSERT_TRUE(res.ok());
  // Everything is read-only: all replicated, zero cost.
  EvalResult ev = Evaluate(*fixture.db, res.value().solution, trace);
  EXPECT_DOUBLE_EQ(ev.cost(), 0.0);
}

TEST(HorticultureTest, SkewAwareCostPenalizesImbalance) {
  // Two designs with equal distributed fractions: the model must prefer the
  // balanced one. We check the cost model through the public result fields.
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace = testing::MakeCustInfoTrace(fixture, 10);
  for (auto& txn : trace.mutable_transactions()) {
    for (auto& a : txn.accesses) a.write = true;
  }
  HorticultureOptions opt;
  opt.num_partitions = 2;
  auto res = Horticulture(opt).Partition(fixture.db.get(), trace);
  ASSERT_TRUE(res.ok());
  EXPECT_GE(res.value().model_cost, 0.0);
  // The skew-aware model is never cheaper than the plain fraction.
  EXPECT_GE(res.value().model_cost, res.value().train_cost - 1e-9);
}

TEST(HorticultureTest, DeterministicForSeed) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace = testing::MakeCustInfoTrace(fixture, 10);
  for (auto& txn : trace.mutable_transactions()) {
    for (auto& a : txn.accesses) a.write = true;
  }
  HorticultureOptions opt;
  opt.num_partitions = 2;
  auto a = Horticulture(opt).Partition(fixture.db.get(), trace);
  auto b = Horticulture(opt).Partition(fixture.db.get(), trace);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().train_cost, b.value().train_cost);
}

TEST(HorticultureTest, EmptyTraceIsHandled) {
  testing::CustInfoDb fixture = testing::MakeCustInfoDb();
  Trace trace;
  HorticultureOptions opt;
  opt.num_partitions = 4;
  auto res = Horticulture(opt).Partition(fixture.db.get(), trace);
  ASSERT_TRUE(res.ok());
  EXPECT_DOUBLE_EQ(res.value().train_cost, 0.0);
}

}  // namespace
}  // namespace jecb
