#include <gtest/gtest.h>

#include "sql/analyzer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace jecb::sql {
namespace {

using jecb::testing::MakeCustInfoSchema;

ProcedureInfo Analyze(const Schema& schema, const std::string& text,
                      AnalyzerOptions options = {}) {
  auto proc = ParseProcedure(text);
  EXPECT_TRUE(proc.ok()) << proc.status().ToString();
  auto info = AnalyzeProcedure(schema, proc.value(), options);
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  return info.value();
}

bool HasJoin(const Schema& schema, const ProcedureInfo& info, const char* a,
             const char* b) {
  ColumnRef ra = schema.ResolveQualified(a).value();
  ColumnRef rb = schema.ResolveQualified(b).value();
  if (rb < ra) std::swap(ra, rb);
  for (const auto& [x, y] : info.equijoins) {
    if (x == ra && y == rb) return true;
  }
  return false;
}

TEST(AnalyzerTest, CustInfoExplicitJoinsAndCandidates) {
  Schema schema = MakeCustInfoSchema();
  ProcedureInfo info = Analyze(schema, jecb::testing::CustInfoSql());

  TableId hs = schema.FindTable("HOLDING_SUMMARY").value();
  TableId ca = schema.FindTable("CUSTOMER_ACCOUNT").value();
  TableId trade = schema.FindTable("TRADE").value();
  EXPECT_TRUE(info.tables_read.count(hs));
  EXPECT_TRUE(info.tables_read.count(ca));
  EXPECT_TRUE(info.tables_read.count(trade));
  EXPECT_TRUE(info.tables_written.empty());

  // The two explicit key-foreign key joins of Example 1.
  EXPECT_TRUE(HasJoin(schema, info, "HOLDING_SUMMARY.HS_CA_ID",
                      "CUSTOMER_ACCOUNT.CA_ID"));
  EXPECT_TRUE(HasJoin(schema, info, "TRADE.T_CA_ID", "CUSTOMER_ACCOUNT.CA_ID"));

  // CA_C_ID appears in WHERE: a candidate attribute.
  EXPECT_TRUE(info.where_attrs.count(
      schema.ResolveQualified("CUSTOMER_ACCOUNT.CA_C_ID").value()));
}

TEST(AnalyzerTest, ImplicitJoinThroughVariable) {
  // Example 3 rewritten as two statements: the join T_CA_ID = CA_ID is
  // implicit through @cust_acct.
  Schema schema = MakeCustInfoSchema();
  ProcedureInfo info = Analyze(schema, R"SQL(
PROCEDURE Rewritten(@t_id) {
  SELECT @cust_acct = T_CA_ID FROM TRADE WHERE T_ID = @t_id;
  SELECT CA_C_ID FROM CUSTOMER_ACCOUNT WHERE CA_ID = @cust_acct;
}
)SQL");
  EXPECT_TRUE(HasJoin(schema, info, "TRADE.T_CA_ID", "CUSTOMER_ACCOUNT.CA_ID"));
}

TEST(AnalyzerTest, ParameterSharedAcrossStatementsJoins) {
  Schema schema = MakeCustInfoSchema();
  ProcedureInfo info = Analyze(schema, R"SQL(
PROCEDURE TwoLookups(@acct) {
  SELECT T_QTY FROM TRADE WHERE T_CA_ID = @acct;
  SELECT HS_QTY FROM HOLDING_SUMMARY WHERE HS_CA_ID = @acct;
}
)SQL");
  EXPECT_TRUE(HasJoin(schema, info, "TRADE.T_CA_ID", "HOLDING_SUMMARY.HS_CA_ID"));
}

TEST(AnalyzerTest, InListParameterIsMultiValuedAndDoesNotJoin) {
  Schema schema = MakeCustInfoSchema();
  ProcedureInfo info = Analyze(schema, R"SQL(
PROCEDURE Many(@a, @b) {
  SELECT T_QTY FROM TRADE WHERE T_CA_ID IN (@a, @b);
  SELECT HS_QTY FROM HOLDING_SUMMARY WHERE HS_CA_ID = @a;
}
)SQL");
  EXPECT_TRUE(info.multi_valued_params.count("a"));
  EXPECT_FALSE(HasJoin(schema, info, "TRADE.T_CA_ID", "HOLDING_SUMMARY.HS_CA_ID"));
  // The IN attribute still counts as a candidate.
  EXPECT_TRUE(
      info.where_attrs.count(schema.ResolveQualified("TRADE.T_CA_ID").value()));
}

TEST(AnalyzerTest, InsertValuesBindParameters) {
  Schema schema = MakeCustInfoSchema();
  ProcedureInfo info = Analyze(schema, R"SQL(
PROCEDURE NewTrade(@t_id, @acct, @qty) {
  SELECT CA_C_ID FROM CUSTOMER_ACCOUNT WHERE CA_ID = @acct;
  INSERT INTO TRADE (T_ID, T_CA_ID, T_QTY) VALUES (@t_id, @acct, @qty);
}
)SQL");
  TableId trade = schema.FindTable("TRADE").value();
  EXPECT_TRUE(info.tables_written.count(trade));
  EXPECT_TRUE(HasJoin(schema, info, "TRADE.T_CA_ID", "CUSTOMER_ACCOUNT.CA_ID"));
  EXPECT_TRUE(
      info.insert_attrs.count(schema.ResolveQualified("TRADE.T_QTY").value()));
}

TEST(AnalyzerTest, AggregateOutputsDoNotBindVariables) {
  Schema schema = MakeCustInfoSchema();
  ProcedureInfo info = Analyze(schema, R"SQL(
PROCEDURE Agg(@acct) {
  SELECT @total = SUM(T_QTY) FROM TRADE WHERE T_CA_ID = @acct;
  SELECT HS_QTY FROM HOLDING_SUMMARY WHERE HS_QTY = @total;
}
)SQL");
  // SUM(T_QTY) is not a key value: no equijoin through @total.
  EXPECT_FALSE(HasJoin(schema, info, "TRADE.T_QTY", "HOLDING_SUMMARY.HS_QTY"));
}

TEST(AnalyzerTest, SetClauseDoesNotWitnessEquality) {
  Schema schema = MakeCustInfoSchema();
  ProcedureInfo info = Analyze(schema, R"SQL(
PROCEDURE Upd(@q) {
  UPDATE TRADE SET T_QTY = @q WHERE T_ID = @q;
}
)SQL");
  // @q is used both as SET value and as key; only the WHERE binds.
  EXPECT_FALSE(HasJoin(schema, info, "TRADE.T_QTY", "TRADE.T_ID"));
}

TEST(AnalyzerTest, SelectClauseAttrsToggle) {
  Schema schema = MakeCustInfoSchema();
  const char* text = R"SQL(
PROCEDURE Sel(@t) {
  SELECT T_CA_ID FROM TRADE WHERE T_ID = @t;
}
)SQL";
  AnalyzerOptions with;
  with.use_select_clause_attrs = true;
  AnalyzerOptions without;
  without.use_select_clause_attrs = false;
  ColumnRef t_ca = schema.ResolveQualified("TRADE.T_CA_ID").value();
  EXPECT_TRUE(Analyze(schema, text, with).select_attrs.count(t_ca));
  EXPECT_TRUE(Analyze(schema, text, without).select_attrs.empty());
}

TEST(AnalyzerTest, UnknownColumnFails) {
  Schema schema = MakeCustInfoSchema();
  auto proc = ParseProcedure("PROCEDURE P() { SELECT NOPE FROM TRADE; }").value();
  EXPECT_FALSE(AnalyzeProcedure(schema, proc).ok());
}

TEST(AnalyzerTest, UnknownTableFails) {
  Schema schema = MakeCustInfoSchema();
  auto proc = ParseProcedure("PROCEDURE P() { SELECT T_QTY FROM NOPE; }").value();
  EXPECT_FALSE(AnalyzeProcedure(schema, proc).ok());
}

TEST(AnalyzerTest, DeleteMarksWrite) {
  Schema schema = MakeCustInfoSchema();
  ProcedureInfo info = Analyze(schema, R"SQL(
PROCEDURE Del(@t) {
  DELETE FROM TRADE WHERE T_ID = @t;
}
)SQL");
  EXPECT_TRUE(info.tables_written.count(schema.FindTable("TRADE").value()));
  EXPECT_TRUE(info.AllTables().count(schema.FindTable("TRADE").value()));
}

}  // namespace
}  // namespace jecb::sql
