#!/bin/sh
# Builds the concurrency-sensitive tests under ThreadSanitizer and runs them.
# Covers the runtime (executor/router) and the parallel partitioning pipeline
# (thread pool, chunked Evaluate, parallel Combiner/Horticulture search).
# Usage: tools/run_tsan.sh [build-dir]   (default: build-tsan)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DJECB_SANITIZE=thread >/dev/null
cmake --build "$BUILD_DIR" --target \
  runtime_test router_test thread_pool_test parallel_eval_test \
  evaluator_test combiner_test jecb_e2e_test -j "$(nproc)"
cd "$BUILD_DIR"
exec ctest --output-on-failure -R \
  'Runtime|Router|ThreadPool|Parallel|Eval|Combiner|EndToEnd'
