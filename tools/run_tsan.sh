#!/bin/sh
# Builds the concurrency-sensitive tests under ThreadSanitizer and runs them.
# Usage: tools/run_tsan.sh [build-dir]   (default: build-tsan)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DJECB_SANITIZE=thread >/dev/null
cmake --build "$BUILD_DIR" --target runtime_test router_test -j "$(nproc)"
cd "$BUILD_DIR"
exec ctest --output-on-failure -R 'Runtime|Router'
