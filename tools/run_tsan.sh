#!/bin/sh
# Builds the concurrency-sensitive test suites under a sanitizer and runs
# them. The suite list lives in ONE place — tests/CMakeLists.txt, where
# `jecb_add_test(<name> LABELS tsan)` both labels the suite for ctest and
# registers the binary with the `jecb_tsan_tests` aggregate target — so the
# build list and the run list cannot drift, and a missing binary fails the
# build instead of being silently skipped.
#
# Covers the runtime (executor/coordinator/fault injector), the parallel
# partitioning pipeline (thread pool, chunked Evaluate, parallel
# Combiner search), the fault-injection suites, and the distributed
# runtime (net wire/event-loop suite plus the multi-process socket
# transport — forked shard servers stay single-threaded, so the whole
# 2PC-over-sockets path runs cleanly under both sanitizers).
#
# Usage: tools/run_tsan.sh [build-dir] [sanitizer]
#   build-dir  defaults to build-tsan
#   sanitizer  thread (default) or address — passed to -DJECB_SANITIZE
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"
SANITIZER="${2:-thread}"

cmake -B "$BUILD_DIR" -S . -DJECB_SANITIZE="$SANITIZER" >/dev/null
cmake --build "$BUILD_DIR" --target jecb_tsan_tests -j "$(nproc)"

cd "$BUILD_DIR"
# Guard against label drift: an empty selection would "pass" while running
# nothing, which is exactly the failure mode the old hard-coded list had.
COUNT="$(ctest -L tsan -N | sed -n 's/^Total Tests: *//p')"
if [ -z "$COUNT" ] || [ "$COUNT" -eq 0 ]; then
  echo "error: no tests carry the 'tsan' ctest label" >&2
  exit 1
fi
echo "running $COUNT sanitizer-labeled tests ($SANITIZER)"
# exec replaces the shell, so ctest's exit code IS the script's exit code —
# no trap/wrapper can swallow a sanitizer failure between ctest and CI.
exec ctest --output-on-failure -j "$(nproc)" -L tsan
