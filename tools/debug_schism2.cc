#include <cstdio>
#include "partition/evaluator.h"
#include "schism/schism.h"
#include "workloads/tpcc.h"
using namespace jecb;
int main() {
  TpccConfig cfg; cfg.warehouses = 8; cfg.districts_per_warehouse = 6; cfg.customers_per_district = 30;
  WorkloadBundle b = TpccWorkload(cfg).Make(14000, 77);
  auto [train, test] = b.trace.SplitTrainTest(0.3);
  for (size_t n : {900, 2000, 4000, 9800}) {
    Trace tr = train.Head(n);
    auto res = Schism(SchismOptions{}).Partition(b.db.get(), tr);
    EvalResult ev = Evaluate(*b.db, res.value().solution, test);
    printf("train=%zu nodes=%zu cut=%llu acc=%.3f test=%.3f |", n,
           res.value().graph_nodes, (unsigned long long)res.value().edge_cut,
           res.value().explanation_accuracy, ev.cost());
    for (uint32_t c = 0; c < test.num_classes(); ++c)
      printf(" %s=%.2f", test.class_name(c).c_str(), ev.class_cost(c));
    printf("\n");
    // warehouse tuple placement
    auto wt = b.db->schema().FindTable("WAREHOUSE").value();
    printf("  wh parts:");
    for (RowId r = 0; r < 8; ++r) printf(" %d", res.value().solution.PartitionOf(*b.db, {wt, r}));
    printf("\n");
  }
  return 0;
}
