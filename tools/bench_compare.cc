// bench_compare: diff the BENCH_*.json files a bench run just produced
// against the committed baselines under bench/baselines/, and turn the
// result into a CI gate plus a human-readable markdown delta table.
//
//   ./bench_compare --baseline_dir bench/baselines --current_dir bench-out \
//       [--tolerance 0.25] [--summary_out "$GITHUB_STEP_SUMMARY"] [--update]
//
// Every baseline file must have a counterpart in --current_dir (a missing
// bench is a failure: it means CI silently stopped running it). Keys are
// compared by flattened path (e.g. `rows[2].identical`) under three rules:
//
//   identity  — keys named `identical` or containing `digest`, `signature`
//               or `cost`. These are deterministic contracts (bit-identical
//               solutions, replay outcome signatures, train cost); ANY
//               divergence fails regardless of tolerance. This is the gate
//               that catches a correctness regression dressed up as a perf
//               win.
//   scale     — `bench`, `workload`, `mode`, `trace_txns`, `threads`,
//               `txns`, `shards`. A mismatch means the current run measured
//               a different experiment than the baseline; comparing the
//               numbers would be meaningless, so it is a hard failure.
//   gated     — top-level (not inside an array) numeric keys containing
//               `speedup`, `throughput` or `per_sec`. Higher is better;
//               the run fails if current < baseline * (1 - tolerance).
//               Per-row timings stay informational: on shared CI runners a
//               single row can swing ±30%, which is exactly why the benches
//               export best-of-rows aggregates for gating instead.
//
// Everything else (raw seconds, hardware_concurrency, scan_kernel, ...) is
// reported in the table but never fails the run.
//
// --update copies the current files over the baselines (for refreshing them
// deliberately after an intentional perf change) and exits 0.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---- Flattening JSON parser ------------------------------------------------
// The BENCH files are machine-written (see bench/bench_util.h): objects,
// arrays, numbers, strings, bools. We flatten them to dotted paths so the
// diff is a plain map comparison and new keys/rows show up naturally.

struct JsonValue {
  enum class Kind { kNumber, kString, kBool, kNull } kind = Kind::kNull;
  double number = 0.0;
  std::string text;  // original token for exact (identity) comparisons

  bool operator==(const JsonValue& o) const {
    return kind == o.kind && text == o.text;
  }
};

class FlattenParser {
 public:
  FlattenParser(std::string_view in, std::map<std::string, JsonValue>* out)
      : in_(in), out_(out) {}

  bool Run() {
    SkipWs();
    return ParseValue("") && (SkipWs(), pos_ == in_.size());
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& msg) {
    if (error_.empty()) {
      error_ = msg + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < in_.size() && std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos_ >= in_.size() || in_[pos_] != '"') return Fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < in_.size() && in_[pos_] != '"') {
      char c = in_[pos_++];
      if (c == '\\' && pos_ < in_.size()) {
        char esc = in_[pos_++];
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'u':
            // The bench writers never emit \u escapes; keep them verbatim so
            // exact comparison still works if one ever appears.
            out->push_back('\\');
            out->push_back('u');
            break;
          default: out->push_back(esc); break;
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= in_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(const std::string& path) {
    SkipWs();
    if (pos_ >= in_.size()) return Fail("unexpected end of input");
    char c = in_[pos_];
    if (c == '{') return ParseObject(path);
    if (c == '[') return ParseArray(path);
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      if (!ParseString(&v.text)) return false;
      (*out_)[path] = std::move(v);
      return true;
    }
    if (std::strncmp(in_.data() + pos_, "true", 4) == 0) {
      pos_ += 4;
      (*out_)[path] = JsonValue{JsonValue::Kind::kBool, 1.0, "true"};
      return true;
    }
    if (std::strncmp(in_.data() + pos_, "false", 5) == 0) {
      pos_ += 5;
      (*out_)[path] = JsonValue{JsonValue::Kind::kBool, 0.0, "false"};
      return true;
    }
    if (std::strncmp(in_.data() + pos_, "null", 4) == 0) {
      pos_ += 4;
      (*out_)[path] = JsonValue{};
      return true;
    }
    // Number.
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) || in_[pos_] == '-' ||
            in_[pos_] == '+' || in_[pos_] == '.' || in_[pos_] == 'e' ||
            in_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("unexpected character");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.text = std::string(in_.substr(start, pos_ - start));
    v.number = std::strtod(v.text.c_str(), nullptr);
    (*out_)[path] = std::move(v);
    return true;
  }

  bool ParseObject(const std::string& path) {
    if (!Consume('{')) return Fail("expected '{'");
    if (Consume('}')) return true;
    for (;;) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return Fail("expected ':'");
      if (!ParseValue(path.empty() ? key : path + "." + key)) return false;
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected ',' in object");
    }
  }

  bool ParseArray(const std::string& path) {
    if (!Consume('[')) return Fail("expected '['");
    if (Consume(']')) return true;
    for (size_t i = 0;; ++i) {
      if (!ParseValue(path + "[" + std::to_string(i) + "]")) return false;
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected ',' in array");
    }
  }

  std::string_view in_;
  std::map<std::string, JsonValue>* out_;
  size_t pos_ = 0;
  std::string error_;
};

bool LoadFlattened(const fs::path& path, std::map<std::string, JsonValue>* out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path.string();
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string json = buf.str();
  FlattenParser parser(json, out);
  if (!parser.Run()) {
    *error = path.string() + ": " + parser.error();
    return false;
  }
  return true;
}

// ---- Comparison rules ------------------------------------------------------

std::string LastSegment(const std::string& path) {
  size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(dot + 1);
}

bool Contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

bool IsIdentityKey(const std::string& path) {
  const std::string key = LastSegment(path);
  return key == "identical" || Contains(key, "digest") ||
         Contains(key, "signature") || Contains(key, "cost");
}

bool IsScaleKey(const std::string& path) {
  const std::string key = LastSegment(path);
  return key == "bench" || key == "workload" || key == "mode" ||
         key == "trace_txns" || key == "threads" || key == "txns" ||
         key == "shards";
}

bool IsGatedMetric(const std::string& path, const JsonValue& v) {
  if (v.kind != JsonValue::Kind::kNumber) return false;
  if (Contains(path, "[")) return false;  // per-row numbers are informational
  const std::string key = LastSegment(path);
  return Contains(key, "speedup") || Contains(key, "throughput") ||
         Contains(key, "per_sec");
}

struct DiffRow {
  std::string metric;
  std::string baseline;
  std::string current;
  std::string delta;
  std::string status;  // "ok", "FAIL", "info"
};

std::string FormatDelta(double base, double cur) {
  if (base == 0.0) return cur == 0.0 ? "0%" : "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (cur - base) / base * 100.0);
  return buf;
}

// Compares one bench file pair; appends rows and returns the number of
// failures found.
int CompareFile(const std::string& name,
                const std::map<std::string, JsonValue>& base,
                const std::map<std::string, JsonValue>& cur, double tolerance,
                std::vector<DiffRow>* rows) {
  int failures = 0;
  for (const auto& [path, bval] : base) {
    auto it = cur.find(path);
    DiffRow row;
    row.metric = path;
    row.baseline = bval.text;
    if (it == cur.end()) {
      // A key that vanished is only fatal if it was load-bearing: losing an
      // identity or gated metric means the gate would silently stop gating.
      row.current = "(missing)";
      row.delta = "-";
      const bool fatal = IsIdentityKey(path) || IsScaleKey(path) ||
                         IsGatedMetric(path, bval);
      row.status = fatal ? "FAIL" : "info";
      failures += fatal ? 1 : 0;
      rows->push_back(std::move(row));
      continue;
    }
    const JsonValue& cval = it->second;
    row.current = cval.text;

    if (IsIdentityKey(path)) {
      const bool same = bval == cval;
      row.delta = same ? "=" : "DIVERGED";
      row.status = same ? "ok" : "FAIL";
      failures += same ? 0 : 1;
    } else if (IsScaleKey(path)) {
      const bool same = bval == cval;
      row.delta = same ? "=" : "scale mismatch";
      row.status = same ? "ok" : "FAIL";
      failures += same ? 0 : 1;
    } else if (IsGatedMetric(path, bval) && cval.kind == JsonValue::Kind::kNumber) {
      row.delta = FormatDelta(bval.number, cval.number);
      const bool regressed = cval.number < bval.number * (1.0 - tolerance);
      row.status = regressed ? "FAIL" : "ok";
      failures += regressed ? 1 : 0;
    } else if (bval.kind == JsonValue::Kind::kNumber &&
               cval.kind == JsonValue::Kind::kNumber) {
      row.delta = FormatDelta(bval.number, cval.number);
      row.status = "info";
    } else {
      row.delta = bval == cval ? "=" : "changed";
      row.status = "info";
    }
    rows->push_back(std::move(row));
  }
  // New keys in the current run (new metrics) are informational.
  for (const auto& [path, cval] : cur) {
    if (base.count(path) != 0) continue;
    rows->push_back({path, "(new)", cval.text, "-", "info"});
  }
  (void)name;
  return failures;
}

std::string MarkdownTable(const std::string& name, const std::vector<DiffRow>& rows,
                          bool verbose) {
  std::string out;
  out += "### " + name + "\n\n";
  out += "| metric | baseline | current | delta | status |\n";
  out += "|---|---|---|---|---|\n";
  for (const DiffRow& r : rows) {
    // Keep the table readable: always show failures and gated/identity rows;
    // drop per-row informational noise unless --verbose.
    if (!verbose && r.status == "info" && Contains(r.metric, "[")) continue;
    const std::string status = r.status == "FAIL" ? "**FAIL**" : r.status;
    out += "| " + r.metric + " | " + r.baseline + " | " + r.current + " | " +
           r.delta + " | " + status + " |\n";
  }
  out += "\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_dir = "bench/baselines";
  std::string current_dir;
  std::string summary_out;
  double tolerance = 0.25;
  bool update = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--baseline_dir" && i + 1 < argc) {
      baseline_dir = argv[++i];
    } else if (arg == "--current_dir" && i + 1 < argc) {
      current_dir = argv[++i];
    } else if (arg == "--summary_out" && i + 1 < argc) {
      summary_out = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg == "--update") {
      update = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --current_dir DIR [--baseline_dir DIR] "
                   "[--tolerance F] [--summary_out FILE] [--update] [--verbose]\n",
                   argv[0]);
      return 2;
    }
  }
  if (current_dir.empty()) {
    std::fprintf(stderr, "error: --current_dir is required\n");
    return 2;
  }

  if (update) {
    fs::create_directories(baseline_dir);
    size_t copied = 0;
    for (const auto& entry : fs::directory_iterator(current_dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) != 0 || entry.path().extension() != ".json") {
        continue;
      }
      fs::copy_file(entry.path(), fs::path(baseline_dir) / name,
                    fs::copy_options::overwrite_existing);
      std::printf("updated %s/%s\n", baseline_dir.c_str(), name.c_str());
      ++copied;
    }
    if (copied == 0) {
      std::fprintf(stderr, "error: no BENCH_*.json files in %s\n",
                   current_dir.c_str());
      return 1;
    }
    return 0;
  }

  if (!fs::is_directory(baseline_dir)) {
    std::fprintf(stderr, "error: baseline dir %s does not exist\n",
                 baseline_dir.c_str());
    return 1;
  }

  std::vector<std::string> baseline_files;
  for (const auto& entry : fs::directory_iterator(baseline_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json") {
      baseline_files.push_back(name);
    }
  }
  std::sort(baseline_files.begin(), baseline_files.end());
  if (baseline_files.empty()) {
    std::fprintf(stderr, "error: no BENCH_*.json baselines in %s\n",
                 baseline_dir.c_str());
    return 1;
  }

  int total_failures = 0;
  std::string report;
  char tol_buf[64];
  std::snprintf(tol_buf, sizeof(tol_buf),
                "## Bench comparison (tolerance %.0f%%)\n\n", tolerance * 100.0);
  report += tol_buf;

  for (const std::string& name : baseline_files) {
    std::map<std::string, JsonValue> base, cur;
    std::string error;
    if (!LoadFlattened(fs::path(baseline_dir) / name, &base, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    const fs::path cur_path = fs::path(current_dir) / name;
    if (!fs::exists(cur_path)) {
      report += "### " + name + "\n\n**FAIL**: baseline exists but the current "
                "run produced no " + name + " — the bench did not run.\n\n";
      ++total_failures;
      continue;
    }
    if (!LoadFlattened(cur_path, &cur, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::vector<DiffRow> rows;
    const int failures = CompareFile(name, base, cur, tolerance, &rows);
    total_failures += failures;
    report += MarkdownTable(name, rows, verbose);
  }

  report += total_failures == 0
                ? "All benches within tolerance; identity contracts hold.\n"
                : std::to_string(total_failures) + " comparison failure(s).\n";

  std::fputs(report.c_str(), stdout);
  if (!summary_out.empty()) {
    std::ofstream out(summary_out, std::ios::app);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", summary_out.c_str());
      return 1;
    }
    out << report;
  }
  return total_failures == 0 ? 0 : 1;
}
