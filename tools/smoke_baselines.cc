#include <cstdio>
#include "horticulture/horticulture.h"
#include "partition/evaluator.h"
#include "schism/schism.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"
#include "workloads/tpce.h"
#include "workloads/seats.h"

using namespace jecb;

static void RunOne(const Workload& w, size_t n) {
  printf("==== %s ====\n", w.name().c_str());
  WorkloadBundle b = w.Make(n, 321);
  auto [train, test] = b.trace.SplitTrainTest(0.3);
  {
    Schism schism(SchismOptions{});
    auto res = schism.Partition(b.db.get(), train);
    if (!res.ok()) { printf("schism failed: %s\n", res.status().ToString().c_str()); return; }
    EvalResult ev = Evaluate(*b.db, res.value().solution, test);
    printf("Schism: nodes=%zu edges=%zu cut=%llu acc=%.3f time=%.1fs TEST cost=%.3f\n",
           res.value().graph_nodes, res.value().graph_edges,
           (unsigned long long)res.value().edge_cut, res.value().explanation_accuracy,
           res.value().elapsed_seconds, ev.cost());
  }
  {
    Horticulture hort(HorticultureOptions{});
    auto res = hort.Partition(b.db.get(), train);
    if (!res.ok()) { printf("hort failed: %s\n", res.status().ToString().c_str()); return; }
    EvalResult ev = Evaluate(*b.db, res.value().solution, test);
    printf("Horticulture: evals=%d train=%.3f time=%.1fs TEST cost=%.3f\n",
           res.value().evaluations, res.value().train_cost,
           res.value().elapsed_seconds, ev.cost());
    printf("%s", res.value().solution.Describe(b.db->schema()).c_str());
  }
}

int main() {
  RunOne(TatpWorkload(), 8000);
  RunOne(TpccWorkload(), 8000);
  RunOne(SeatsWorkload(), 8000);
  RunOne(TpceWorkload(), 10000);
  return 0;
}
