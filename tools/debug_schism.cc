#include <cstdio>
#include "partition/evaluator.h"
#include "schism/schism.h"
#include "workloads/tpcc.h"

using namespace jecb;

int main() {
  TpccWorkload w;
  WorkloadBundle b = w.Make(8000, 321);
  auto [train, test] = b.trace.SplitTrainTest(0.3);
  Schism schism(SchismOptions{});
  auto res = schism.Partition(b.db.get(), train);
  printf("nodes=%zu edges=%zu cut=%llu\n", res.value().graph_nodes, res.value().graph_edges, (unsigned long long)res.value().edge_cut);
  EvalResult tr = Evaluate(*b.db, res.value().solution, train);
  EvalResult ev = Evaluate(*b.db, res.value().solution, test);
  printf("train cost %.3f test cost %.3f acc %.3f\n", tr.cost(), ev.cost(),
         res.value().explanation_accuracy);
  for (uint32_t c = 0; c < test.num_classes(); ++c)
    printf("  %-14s train %.3f test %.3f\n", test.class_name(c).c_str(),
           tr.class_cost(c), ev.class_cost(c));
  // Where do warehouse tuples land?
  auto wt = b.db->schema().FindTable("WAREHOUSE").value();
  for (RowId r = 0; r < b.db->table_data(wt).num_rows(); ++r)
    printf("warehouse %u -> %d\n", r, res.value().solution.PartitionOf(*b.db, {wt, r}));
  auto dt = b.db->schema().FindTable("DISTRICT").value();
  for (RowId r = 0; r < 16; ++r)
    printf("district %u (w=%lld) -> %d\n", r,
           (long long)b.db->table_data(dt).At(r, 0).AsInt(),
           res.value().solution.PartitionOf(*b.db, {dt, r}));
  return 0;
}
