#include <algorithm>
#include <array>
#include <cstdio>
#include <unordered_map>
#include "graph/partitioner.h"
#include "storage/database.h"
#include "trace/trace.h"
#include "workloads/tpcc.h"

using namespace jecb;

int main(int argc, char** argv) {
  TpccWorkload w;
  WorkloadBundle b = w.Make(8000, 321);
  auto [train, test] = b.trace.SplitTrainTest(0.3);
  auto classes = ClassifyTables(b.db->schema(), train);
  std::unordered_map<TupleId, NodeId, TupleIdHash> node_of;
  std::vector<TupleId> tuples;
  std::vector<std::vector<NodeId>> txns;
  for (auto& t : train.transactions()) {
    std::vector<NodeId> ns;
    for (auto& a : t.accesses) {
      if (classes[a.tuple.table] != AccessClass::kPartitioned) continue;
      auto [it, ins] = node_of.emplace(a.tuple, tuples.size());
      if (ins) tuples.push_back(a.tuple);
      if (std::find(ns.begin(), ns.end(), it->second) == ns.end()) ns.push_back(it->second);
    }
    txns.push_back(ns);
  }
  GraphBuilder gb(tuples.size(), 0);
  for (auto& ns : txns) {
    for (auto n : ns) gb.AddNodeWeight(n, 1);
    for (size_t i = 0; i < ns.size(); ++i)
      for (size_t j = i + 1; j < ns.size(); ++j) gb.AddEdge(ns[i], ns[j], 1);
  }
  Graph g = gb.Build();
  printf("nodes=%zu edges=%zu total_w=%llu\n", g.num_nodes(), g.num_edges(),
         (unsigned long long)g.total_node_weight());
  GraphPartitionOptions opt;
  opt.num_parts = 8;
  opt.coarse_target = argc > 1 ? atoi(argv[1]) : 64;
  opt.balance_tolerance = argc > 2 ? atof(argv[2]) : 1.10;
  opt.refine_passes = argc > 3 ? atoi(argv[3]) : 6;
  opt.seed = argc > 4 ? atoi(argv[4]) : 1;
  auto part = PartitionGraph(g, opt);
  auto q = MeasurePartition(g, part, 8);
  printf("cut=%llu imbalance=%.3f\n", (unsigned long long)q.cut, q.imbalance);
  // warehouse purity: group tuples by the warehouse column (col 0 of most tables)
  // WAREHOUSE table id:
  auto wt = b.db->schema().FindTable("WAREHOUSE").value();
  // per warehouse, weight per partition using first int col as warehouse id when plausible
  double agree = 0, tot = 0;
  std::vector<std::array<uint64_t, 8>> wpart(8);
  for (auto& a : wpart) a.fill(0);
  for (NodeId n = 0; n < tuples.size(); ++n) {
    TupleId t = tuples[n];
    int64_t wid = b.db->table_data(t.table).At(t.row, t.table == wt ? 0 : 0).AsInt();
    // HISTORY col0 is H_ID not warehouse; skip HISTORY
    if (b.db->schema().table(t.table).name == "HISTORY") continue;
    if (wid < 0 || wid >= 8) continue;
    wpart[wid][part[n]] += g.node_weight(n);
  }
  for (int wh = 0; wh < 8; ++wh) {
    uint64_t best = 0, sum = 0;
    int bestp = 0;
    for (int p = 0; p < 8; ++p) { sum += wpart[wh][p]; if (wpart[wh][p] > best) { best = wpart[wh][p]; bestp = p; } }
    printf("wh %d -> part %d purity %.2f (w=%llu)\n", wh, bestp, double(best)/sum,
           (unsigned long long)sum);
    agree += best; tot += sum;
  }
  printf("overall purity %.3f\n", agree / tot);
  return 0;
}
