#include <cstdio>
#include "jecb/jecb.h"
#include "partition/evaluator.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"
#include "workloads/tpce.h"
#include "workloads/seats.h"
#include "workloads/auctionmark.h"
#include "workloads/synthetic.h"

using namespace jecb;

static void RunOne(const Workload& w, size_t n) {
  printf("==== %s ====\n", w.name().c_str());
  WorkloadBundle b = w.Make(n, 123);
  auto [train, test] = b.trace.SplitTrainTest(0.3);
  Jecb jecb;
  auto res = Jecb(JecbOptions{}).Partition(b.db.get(), b.procedures, train);
  if (!res.ok()) { printf("JECB FAILED: %s\n", res.status().ToString().c_str()); return; }
  const JecbResult& r = res.value();
  printf("%s", FormatClassSolutions(b.db->schema(), r.classes).c_str());
  printf("chosen attr: %s  train cost %.3f  elapsed %.2fs\n",
         r.combiner_report.chosen_attr.c_str(), r.combiner_report.best_train_cost,
         r.elapsed_seconds);
  printf("naive space %.3g -> evaluated %llu combos; candidates:", r.combiner_report.naive_search_space,
         (unsigned long long)r.combiner_report.evaluated_combinations);
  for (auto& a : r.combiner_report.candidate_attrs) printf(" %s", a.c_str());
  printf("\n");
  EvalResult ev = Evaluate(*b.db, r.solution, test);
  printf("TEST cost: %.3f (%llu/%llu txns)\n", ev.cost(),
         (unsigned long long)ev.distributed_txns, (unsigned long long)ev.total_txns);
  for (uint32_t c = 0; c < test.num_classes(); ++c) {
    printf("  %-22s %.3f\n", test.class_name(c).c_str(), ev.class_cost(c));
  }
}

int main() {
  RunOne(TatpWorkload(), 8000);
  RunOne(TpccWorkload(), 8000);
  RunOne(SeatsWorkload(), 8000);
  RunOne(AuctionMarkWorkload(), 8000);
  RunOne(TpceWorkload(), 12000);
  RunOne(SyntheticWorkload(), 6000);
  return 0;
}
