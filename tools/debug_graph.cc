#include <cstdio>
#include <random>
#include "graph/partitioner.h"

using namespace jecb;

int main() {
  std::mt19937_64 rng(5);
  const int kClusters = 8, kPer = 200;
  GraphBuilder b(kClusters * kPer, 1);
  // dense intra-cluster, sparse inter-cluster
  for (int c = 0; c < kClusters; ++c) {
    for (int i = 0; i < kPer; ++i)
      for (int j = 0; j < 8; ++j)
        b.AddEdge(c * kPer + i, c * kPer + rng() % kPer, 3);
  }
  for (int e = 0; e < kClusters * kPer / 2; ++e)
    b.AddEdge(rng() % (kClusters * kPer), rng() % (kClusters * kPer), 1);
  Graph g = b.Build();
  GraphPartitionOptions opt;
  opt.num_parts = 8;
  auto part = PartitionGraph(g, opt);
  auto q = MeasurePartition(g, part, 8);
  printf("cut=%llu imbalance=%.3f\n", (unsigned long long)q.cut, q.imbalance);
  // majority partition per cluster + purity
  for (int c = 0; c < kClusters; ++c) {
    int count[8] = {0};
    for (int i = 0; i < kPer; ++i) count[part[c * kPer + i]]++;
    int best = 0;
    for (int p = 1; p < 8; ++p) if (count[p] > count[best]) best = p;
    printf("cluster %d -> part %d purity %.2f\n", c, best, count[best] / double(kPer));
  }
  return 0;
}
