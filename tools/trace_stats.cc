// trace_stats: per-phase duration rollups for a Chrome trace-event JSON
// file (the --trace_out output of jecb_cli, runtime_replay and the bench
// binaries).
//
//   ./trace_stats trace.json [--cat runtime] [--top N]
//
// Prints one AsciiTable of span groups — (category, name) pairs — sorted by
// total time, plus instant-event (fault annotation) counts. The obs tests
// also run this path to validate the exporter output end to end.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/ascii_table.h"
#include "common/string_util.h"
#include "obs/trace_export.h"

using namespace jecb;

int main(int argc, char** argv) {
  std::string path;
  std::string cat_filter;
  size_t top = 0;  // 0 = all
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--cat" && i + 1 < argc) {
      cat_filter = argv[++i];
    } else if (arg == "--top" && i + 1 < argc) {
      top = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "usage: %s <trace.json> [--cat CATEGORY] [--top N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s <trace.json> [--cat CATEGORY] [--top N]\n",
                 argv[0]);
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string json = buf.str();

  std::vector<ChromeTraceEvent> events;
  std::string error;
  if (!ParseChromeTrace(json, &events, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 1;
  }

  if (!cat_filter.empty()) {
    std::vector<ChromeTraceEvent> kept;
    for (ChromeTraceEvent& e : events) {
      if (e.cat == cat_filter) kept.push_back(std::move(e));
    }
    events = std::move(kept);
  }

  size_t spans = 0;
  size_t instants = 0;
  size_t counters = 0;
  std::map<std::pair<std::string, std::string>, uint64_t> instant_counts;
  for (const ChromeTraceEvent& e : events) {
    if (e.ph == "X") {
      ++spans;
    } else if (e.ph == "i" || e.ph == "I") {
      ++instants;
      ++instant_counts[{e.cat, e.name}];
    } else if (e.ph == "C") {
      ++counters;
    }
  }
  std::printf("%s: %zu events (%zu spans, %zu instants, %zu counters)\n\n",
              path.c_str(), events.size(), spans, instants, counters);

  std::vector<SpanRollup> rollups = RollupSpans(events);
  if (top > 0 && rollups.size() > top) rollups.resize(top);
  AsciiTable table({"category", "span", "count", "total_ms", "mean_us", "max_us"});
  for (const SpanRollup& r : rollups) {
    table.AddRow({r.cat, r.name, std::to_string(r.count),
                  FormatDouble(static_cast<double>(r.total_us) / 1000.0, 2),
                  FormatDouble(r.mean_us(), 1),
                  std::to_string(r.max_us)});
  }
  std::printf("%s\n", table.ToString().c_str());

  if (!instant_counts.empty()) {
    AsciiTable itable({"category", "instant", "count"});
    for (const auto& [key, count] : instant_counts) {
      itable.AddRow({key.first, key.second, std::to_string(count)});
    }
    std::printf("%s\n", itable.ToString().c_str());
  }
  return 0;
}
