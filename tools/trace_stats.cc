// trace_stats: per-phase duration rollups for a Chrome trace-event JSON
// file (the --trace_out output of jecb_cli, runtime_replay and the bench
// binaries), including the merged multi-process cluster traces the
// distributed replay writes.
//
//   ./trace_stats trace.json [--cat runtime] [--top N] [--txns N]
//
// Prints one AsciiTable of span groups — (category, name) pairs — sorted by
// total time, plus instant-event (fault annotation) counts. For a
// multi-process trace it additionally prints a per-process breakdown (tracks
// labeled by the "M" process_name metadata) and a cross-process transaction
// summary: every span carrying a "txn" arg is folded into that txn's
// critical path, so the txns that spent the longest wall time — and how many
// processes they touched — surface without opening Perfetto. The obs tests
// also run this path to validate the exporter output end to end.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/ascii_table.h"
#include "common/string_util.h"
#include "obs/trace_export.h"

using namespace jecb;

namespace {

struct TxnPath {
  uint64_t first_ts = UINT64_MAX;  ///< earliest span start across processes
  uint64_t last_ts = 0;            ///< latest span end across processes
  uint64_t span_us = 0;            ///< summed span durations
  uint64_t spans = 0;
  std::vector<int64_t> pids;  ///< distinct processes touched (sorted)

  uint64_t makespan_us() const {
    return last_ts > first_ts ? last_ts - first_ts : 0;
  }
};

void PrintRollups(const std::vector<ChromeTraceEvent>& events, size_t top,
                  const char* heading) {
  std::vector<SpanRollup> rollups = RollupSpans(events);
  if (rollups.empty()) return;
  if (top > 0 && rollups.size() > top) rollups.resize(top);
  AsciiTable table({"category", "span", "count", "total_ms", "mean_us", "max_us"});
  for (const SpanRollup& r : rollups) {
    table.AddRow({r.cat, r.name, std::to_string(r.count),
                  FormatDouble(static_cast<double>(r.total_us) / 1000.0, 2),
                  FormatDouble(r.mean_us(), 1),
                  std::to_string(r.max_us)});
  }
  if (heading != nullptr) std::printf("%s\n", heading);
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string cat_filter;
  size_t top = 0;       // 0 = all
  size_t txn_top = 10;  // rows of the cross-process txn table
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--cat" && i + 1 < argc) {
      cat_filter = argv[++i];
    } else if (arg == "--top" && i + 1 < argc) {
      top = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--txns" && i + 1 < argc) {
      txn_top = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: %s <trace.json> [--cat CATEGORY] [--top N] [--txns N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: %s <trace.json> [--cat CATEGORY] [--top N] [--txns N]\n",
                 argv[0]);
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string json = buf.str();

  std::vector<ChromeTraceEvent> events;
  std::string error;
  if (!ParseChromeTrace(json, &events, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 1;
  }

  // Track labels come from metadata, which a --cat filter must not drop.
  std::map<int64_t, std::string> process_names;
  for (const ChromeTraceEvent& e : events) {
    if (e.ph != "M" || e.name != "process_name") continue;
    for (const auto& [key, value] : e.sargs) {
      if (key == "name") process_names[e.pid] = value;
    }
  }

  if (!cat_filter.empty()) {
    std::vector<ChromeTraceEvent> kept;
    for (ChromeTraceEvent& e : events) {
      if (e.cat == cat_filter) kept.push_back(std::move(e));
    }
    events = std::move(kept);
  }

  size_t spans = 0;
  size_t instants = 0;
  size_t counters = 0;
  std::map<std::pair<std::string, std::string>, uint64_t> instant_counts;
  std::map<int64_t, std::vector<ChromeTraceEvent>> by_pid;
  std::map<int64_t, TxnPath> txns;
  // Open-loop sojourn split ("openloop" category, runtime/load_gen.cc):
  // queue_wait (scheduled arrival -> admission dequeue) vs service
  // (dequeue -> completion) per sampled txn.
  struct Side {
    uint64_t count = 0;
    uint64_t total_us = 0;
    uint64_t max_us = 0;
  };
  Side queue_wait, service;
  uint64_t shed_instants = 0;
  for (const ChromeTraceEvent& e : events) {
    if (e.cat == "openloop") {
      if (e.ph == "X") {
        Side* side = e.name == "queue_wait" ? &queue_wait
                     : e.name == "service"  ? &service
                                            : nullptr;
        if (side != nullptr) {
          ++side->count;
          side->total_us += e.dur_us;
          side->max_us = std::max(side->max_us, e.dur_us);
        }
      } else if (e.name == "shed") {
        ++shed_instants;
      }
    }
    if (e.ph == "X") {
      ++spans;
      by_pid[e.pid].push_back(e);
      for (const auto& [key, value] : e.args) {
        if (key != "txn") continue;
        TxnPath& t = txns[static_cast<int64_t>(value)];
        t.first_ts = std::min(t.first_ts, e.ts_us);
        t.last_ts = std::max(t.last_ts, e.ts_us + e.dur_us);
        t.span_us += e.dur_us;
        ++t.spans;
        if (!std::binary_search(t.pids.begin(), t.pids.end(), e.pid)) {
          t.pids.insert(std::lower_bound(t.pids.begin(), t.pids.end(), e.pid),
                        e.pid);
        }
      }
    } else if (e.ph == "i" || e.ph == "I") {
      ++instants;
      ++instant_counts[{e.cat, e.name}];
    } else if (e.ph == "C") {
      ++counters;
    }
  }
  std::printf("%s: %zu events (%zu spans, %zu instants, %zu counters, "
              "%zu processes)\n\n",
              path.c_str(), events.size(), spans, instants, counters,
              by_pid.size());

  PrintRollups(events, top, nullptr);

  // Per-process tables only when the trace actually has multiple tracks —
  // a single-process trace keeps the old one-table output.
  if (by_pid.size() > 1) {
    for (const auto& [pid, pid_events] : by_pid) {
      auto it = process_names.find(pid);
      std::string label = it != process_names.end()
                              ? it->second
                              : "pid " + std::to_string(pid);
      std::string heading = "process " + std::to_string(pid) + " (" + label + ")";
      PrintRollups(pid_events, top, heading.c_str());
    }
  }

  // Cross-process critical paths: makespan is first span start to last span
  // end across every track, so coordinator wait and shard hold both count.
  if (!txns.empty() && txn_top > 0) {
    std::vector<std::pair<int64_t, TxnPath>> ranked(txns.begin(), txns.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second.makespan_us() != b.second.makespan_us()) {
        return a.second.makespan_us() > b.second.makespan_us();
      }
      return a.first < b.first;
    });
    if (ranked.size() > txn_top) ranked.resize(txn_top);
    AsciiTable ttable(
        {"txn", "spans", "processes", "makespan_us", "span_total_us"});
    for (const auto& [id, t] : ranked) {
      ttable.AddRow({std::to_string(id), std::to_string(t.spans),
                     std::to_string(t.pids.size()),
                     std::to_string(t.makespan_us()),
                     std::to_string(t.span_us)});
    }
    std::printf("slowest transactions (%zu of %zu traced)\n%s\n", ranked.size(),
                txns.size(), ttable.ToString().c_str());
  }

  // Where does open-loop sojourn time go: waiting for admission, or being
  // served? A queue_wait share that grows with offered load is the
  // saturation signature; a flat one means the bottleneck is service time.
  if (queue_wait.count + service.count > 0) {
    auto mean = [](const Side& s) {
      return s.count == 0
                 ? 0.0
                 : static_cast<double>(s.total_us) / static_cast<double>(s.count);
    };
    const double total =
        static_cast<double>(queue_wait.total_us + service.total_us);
    AsciiTable otable({"phase", "count", "total_ms", "mean_us", "max_us",
                       "share"});
    auto add_side = [&](const char* name, const Side& side) {
      otable.AddRow(
          {name, std::to_string(side.count),
           FormatDouble(static_cast<double>(side.total_us) / 1000.0, 2),
           FormatDouble(mean(side), 1), std::to_string(side.max_us),
           total > 0.0 ? FormatDouble(
                             static_cast<double>(side.total_us) / total * 100.0,
                             1) + "%"
                       : "-"});
    };
    add_side("queue_wait", queue_wait);
    add_side("service", service);
    std::printf("open-loop sojourn split (%llu sampled shed events)\n%s\n",
                static_cast<unsigned long long>(shed_instants),
                otable.ToString().c_str());
  }

  if (!instant_counts.empty()) {
    AsciiTable itable({"category", "instant", "count"});
    for (const auto& [key, count] : instant_counts) {
      itable.AddRow({key.first, key.second, std::to_string(count)});
    }
    std::printf("%s\n", itable.ToString().c_str());
  }
  return 0;
}
