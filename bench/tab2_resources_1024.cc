// Table 2: resource consumption for partitioning the TPC-C 1024-warehouse
// database — Schism at 0.1%/0.2% coverage vs JECB.
//
// Paper shape: Schism needs 5.3 GB / 1250 s at 0.1% and 30 GB / 3870 s at
// 0.2% coverage; JECB stays at 30 MB / 36 s regardless of database size.
#include "bench_util.h"
#include "workloads/tpcc.h"

using namespace jecb;
using namespace jecb::bench;

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Table 2: resource consumption, TPC-C 1024 warehouses",
              "Schism grows with coverage x database size; JECB independent of both");

  TpccConfig cfg;
  cfg.warehouses = 1024;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 5;
  cfg.items = 20;
  cfg.initial_orders_per_district = 1;
  cfg.min_order_lines = 4;
  cfg.max_order_lines = 8;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(30000, 2);
  auto [full_train, test] = bundle.trace.SplitTrainTest(0.25);

  const int32_t k = 128;
  AsciiTable table({"approach", "coverage", "RAM delta (MB)", "CPU (seconds)",
                    "test cost"});
  struct Level {
    const char* label;
    size_t txns;
  };
  for (Level level : std::initializer_list<Level>{{"schism 0.1%", 40},
                                                  {"schism 0.2%", 80},
                                                  {"schism 10%", 4500},
                                                  {"schism 50%", 17000}}) {
    Trace train = full_train.Head(level.txns);
    RunResult r = RunSchism(bundle.db.get(), train, test, k, level.label);
    table.AddRow({level.label, Pct(Coverage(*bundle.db, train)),
                  std::to_string(r.rss_delta_mb), FormatDouble(r.cpu_seconds, 2),
                  Pct(r.test_cost)});
  }
  RunResult jecb = RunJecb(bundle.db.get(), bundle.procedures, full_train, test, k);
  table.AddRow({"JECB", Pct(Coverage(*bundle.db, full_train)),
                std::to_string(jecb.rss_delta_mb), FormatDouble(jecb.cpu_seconds, 2),
                Pct(jecb.test_cost)});
  std::printf("%s\n", table.ToString().c_str());
  FinishObs(argc, argv);
  return 0;
}
