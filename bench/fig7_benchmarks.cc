// Figure 7: partitioning quality (% distributed transactions) on the five
// benchmarks — JECB vs Schism (10%-coverage training) vs Horticulture, at 8
// partitions.
//
// Paper shape: all three tie on TPC-C; JECB and Horticulture solve TATP
// while Schism errs (~22.6%); JECB is far ahead of Horticulture on SEATS;
// JECB about equals Horticulture on AuctionMark (both beating Schism); on
// TPC-E both baselines perform badly while JECB reaches ~21%.
#include <memory>

#include "bench_util.h"
#include "workloads/auctionmark.h"
#include "workloads/seats.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"
#include "workloads/tpce.h"

using namespace jecb;
using namespace jecb::bench;

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Figure 7: partitioning quality on five benchmarks (k = 8)",
              "TPC-C tie; TATP Schism errs; SEATS JECB >> Horticulture; "
              "AuctionMark JECB ~= Horticulture; TPC-E JECB ~21%, baselines bad");

  struct Bench {
    std::unique_ptr<Workload> workload;
    size_t txns;
    size_t schism_train_txns;  // ~10% coverage
  };
  std::vector<Bench> benches;
  {
    TpccConfig tpcc;
    tpcc.warehouses = 8;
    tpcc.districts_per_warehouse = 6;
    tpcc.customers_per_district = 30;
    // Paper: all three approaches tie on TPC-C. Its 10% coverage of a
    // 12M-tuple database is a ~400k-transaction sample; at this scale the
    // equivalent regime (a well-sampled tuple graph) needs ~3k transactions,
    // not a literal 10% of our small database.
    benches.push_back({std::make_unique<TpccWorkload>(tpcc), 14000, 6000});
    TatpConfig tatp;
    tatp.subscribers = 4000;
    benches.push_back({std::make_unique<TatpWorkload>(tatp), 14000, 1200});
    SeatsConfig seats;
    seats.customers = 2500;
    benches.push_back({std::make_unique<SeatsWorkload>(seats), 14000, 1400});
    AuctionMarkConfig am;
    am.users = 2000;
    benches.push_back({std::make_unique<AuctionMarkWorkload>(am), 14000, 1600});
    TpceConfig tpce;
    tpce.customers = 600;
    benches.push_back({std::make_unique<TpceWorkload>(tpce), 14000, 2600});
  }

  const int32_t k = 8;
  AsciiTable table({"benchmark", "JECB", "Schism 10%", "Horticulture", "notes"});
  for (auto& bench : benches) {
    WorkloadBundle bundle = bench.workload->Make(bench.txns, 77);
    auto [train, test] = bundle.trace.SplitTrainTest(0.3);

    RunResult jecb = RunJecb(bundle.db.get(), bundle.procedures, train, test, k);
    Trace schism_train = train.Head(bench.schism_train_txns);
    RunResult schism = RunSchism(bundle.db.get(), schism_train, test, k);
    RunResult hc;
    std::string notes = "attr " + jecb.detail + ", schism cov " +
                        Pct(Coverage(*bundle.db, schism_train));
    if (bench.workload->name() == "TPC-E") {
      // The paper applies the Horticulture solution its authors supplied
      // (Table 4); our LNS reimplementation is reported in the ablations.
      DatabaseSolution paper = HorticulturePaperTpceSolution(*bundle.db, k);
      hc = RunFixedSolution(*bundle.db, paper, test, "Horticulture");
      notes += ", HC = paper Table 4 solution";
    } else {
      hc = RunHorticulture(bundle.db.get(), train, test, k);
    }
    table.AddRow({bench.workload->name(), Pct(jecb.test_cost), Pct(schism.test_cost),
                  Pct(hc.test_cost), notes});
    std::printf("%s done\n", bench.workload->name().c_str());
  }
  std::printf("\n%s\n", table.ToString().c_str());
  FinishObs(argc, argv);
  return 0;
}
