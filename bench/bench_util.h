// Shared plumbing for the experiment binaries: run each partitioning
// approach on a workload bundle, measure resources, and print paper-style
// tables and series.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/ascii_table.h"
#include "common/string_util.h"
#include "common/topology.h"
#include "expr/meter.h"
#include "obs/cluster_telemetry.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "horticulture/horticulture.h"
#include "jecb/jecb.h"
#include "partition/evaluator.h"
#include "schism/schism.h"
#include "workloads/workload.h"

namespace jecb::bench {

/// Outcome of running one approach on one configuration.
struct RunResult {
  std::string approach;
  double test_cost = 0.0;
  double train_cost = 0.0;
  double cpu_seconds = 0.0;
  uint64_t rss_delta_mb = 0;
  uint64_t peak_rss_mb = 0;
  std::string detail;  // chosen attribute, graph size, ...
  EvalResult eval;     // full evaluation on the test trace
};

/// Fraction of database tuples the trace touches (the paper's "coverage").
inline double Coverage(const Database& db, const Trace& trace) {
  std::set<TupleId> seen;
  for (const auto& txn : trace.transactions()) {
    for (const auto& a : txn.accesses) seen.insert(a.tuple);
  }
  size_t total = db.TotalRows();
  return total == 0 ? 0.0
                    : static_cast<double>(seen.size()) / static_cast<double>(total);
}

inline RunResult RunJecb(Database* db, const std::vector<sql::Procedure>& procs,
                         const Trace& train, const Trace& test, int32_t k,
                         JecbOptions opt = {}) {
  opt.num_partitions = k;
  ResourceMeter meter;
  auto res = Jecb(opt).Partition(db, procs, train);
  auto usage = meter.Stop();
  CheckOk(res.status(), "RunJecb");
  RunResult out;
  out.approach = "JECB";
  out.train_cost = res.value().combiner_report.best_train_cost;
  out.eval = Evaluate(*db, res.value().solution, test);
  out.test_cost = out.eval.cost();
  out.cpu_seconds = usage.cpu_seconds;
  out.rss_delta_mb = usage.rss_delta_mb;
  out.peak_rss_mb = usage.peak_rss_mb;
  out.detail = res.value().combiner_report.chosen_attr;
  return out;
}

inline RunResult RunSchism(Database* db, const Trace& train, const Trace& test,
                           int32_t k, std::string label = "Schism") {
  SchismOptions opt;
  opt.num_partitions = k;
  ResourceMeter meter;
  auto res = Schism(opt).Partition(db, train);
  auto usage = meter.Stop();
  CheckOk(res.status(), "RunSchism");
  RunResult out;
  out.approach = std::move(label);
  out.eval = Evaluate(*db, res.value().solution, test);
  out.test_cost = out.eval.cost();
  out.cpu_seconds = usage.cpu_seconds;
  out.rss_delta_mb = usage.rss_delta_mb;
  out.peak_rss_mb = usage.peak_rss_mb;
  out.detail = "nodes=" + std::to_string(res.value().graph_nodes) +
               " edges=" + std::to_string(res.value().graph_edges) +
               " cut=" + std::to_string(res.value().edge_cut);
  return out;
}

inline RunResult RunHorticulture(Database* db, const Trace& train, const Trace& test,
                                 int32_t k) {
  HorticultureOptions opt;
  opt.num_partitions = k;
  ResourceMeter meter;
  auto res = Horticulture(opt).Partition(db, train);
  auto usage = meter.Stop();
  CheckOk(res.status(), "RunHorticulture");
  RunResult out;
  out.approach = "Horticulture";
  out.train_cost = res.value().train_cost;
  out.eval = Evaluate(*db, res.value().solution, test);
  out.test_cost = out.eval.cost();
  out.cpu_seconds = usage.cpu_seconds;
  out.rss_delta_mb = usage.rss_delta_mb;
  out.peak_rss_mb = usage.peak_rss_mb;
  out.detail = std::to_string(res.value().evaluations) + " evaluations";
  return out;
}

/// Evaluates a fixed (externally supplied) solution, e.g. the paper's
/// Horticulture TPC-E solution.
inline RunResult RunFixedSolution(const Database& db, const DatabaseSolution& solution,
                                  const Trace& test, std::string label) {
  RunResult out;
  out.approach = std::move(label);
  out.eval = Evaluate(db, solution, test);
  out.test_cost = out.eval.cost();
  return out;
}

inline std::string Pct(double v) { return FormatDouble(v * 100.0, 1) + "%"; }

/// Value of `--flag value` or `--flag=value` in argv, or `def` when absent.
inline std::string ArgValue(int argc, char** argv, std::string_view flag,
                            std::string def = "") {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == flag) {
      if (i + 1 < argc) return argv[i + 1];
    } else if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
               arg[flag.size()] == '=') {
      return std::string(arg.substr(flag.size() + 1));
    }
  }
  return def;
}

inline int64_t ArgInt(int argc, char** argv, std::string_view flag, int64_t def) {
  std::string v = ArgValue(argc, argv, flag);
  return v.empty() ? def : std::strtoll(v.c_str(), nullptr, 10);
}

/// Output directory for bench JSON: `--out_dir DIR` if given, otherwise the
/// directory the binary lives in (the build tree) — never the source tree,
/// so repeated runs cannot litter the repo root with untracked files.
inline std::string OutDir(int argc, char** argv) {
  std::string dir = ArgValue(argc, argv, "--out_dir");
  if (dir.empty()) {
    std::string self = argv[0];
    size_t slash = self.find_last_of('/');
    dir = slash == std::string::npos ? "." : self.substr(0, slash);
  }
  if (!dir.empty() && dir.back() == '/') dir.pop_back();
  return dir;
}

/// Writes `content` to <out_dir>/BENCH_<bench>.json (the uniform bench
/// output naming) and returns the path; prints where it wrote.
inline std::string WriteBenchJson(const std::string& out_dir,
                                  const std::string& bench,
                                  const std::string& content) {
  // The CI perf gate (tools/bench_compare) treats a missing BENCH file as
  // "the bench did not run", so a silent write failure here would turn into
  // a confusing downstream failure — create the directory and fail loudly.
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  std::string path = out_dir + "/BENCH_" + bench + ".json";
  // Stamp the machine's topology fingerprint into every bench artifact so
  // cross-machine baseline drift is explainable from the JSON alone. The
  // "machine" keys are deliberately outside bench_compare's gated/identity
  // name sets, so the stamp never participates in the perf gate.
  std::string stamped = content;
  if (!stamped.empty() && stamped.front() == '{') {
    stamped.insert(1, "\"machine\":" + TopologyFingerprintJson() + ",");
  }
  std::ofstream out(path);
  out << stamped;
  if (!out) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s\n", path.c_str());
  return path;
}

/// Turns on the span recorder when `--trace_out PATH` was passed. Call
/// before any measured work so the whole run lands in the trace. Returns
/// whether tracing is on.
inline bool InitObs(int argc, char** argv) {
  if (ArgValue(argc, argv, "--trace_out").empty()) return false;
  TraceRecorder::Default().Enable();
  return true;
}

/// Writes the Chrome trace (`--trace_out`) and/or the Prometheus metrics
/// dump (`--metrics_out`) if requested. Call once at the end of main(),
/// after all workers have quiesced (the collection contract). When the run
/// harvested telemetry from shard child processes (multi-process replay),
/// the trace is the merged cluster trace — one process track per pid — and
/// the metrics dump appends the shard-labeled remote series after the local
/// registry, so the artifacts cover the whole cluster, not just this
/// process.
inline void FinishObs(int argc, char** argv) {
  const ClusterTelemetry& cluster = ClusterTelemetry::Default();
  std::string trace_path = ArgValue(argc, argv, "--trace_out");
  if (!trace_path.empty()) {
    const bool merged = cluster.num_processes() > 0;
    const bool ok = merged ? cluster.WriteClusterTrace(trace_path)
                           : TraceRecorder::Default().WriteChromeTrace(trace_path);
    if (ok) {
      std::printf("wrote %s (%zu remote processes, %llu local events dropped)\n",
                  trace_path.c_str(), cluster.num_processes(),
                  static_cast<unsigned long long>(TraceRecorder::Default().dropped()));
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_path.c_str());
    }
  }
  std::string metrics_path = ArgValue(argc, argv, "--metrics_out");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << MetricsRegistry::Default().RenderPrometheus()
        << cluster.RenderRemoteMetrics();
    if (out) {
      std::printf("wrote %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics to %s\n", metrics_path.c_str());
    }
  }
}

/// Prints "series <name>: x1=y1 x2=y2 ..." — one line per plotted curve.
inline void PrintSeries(const std::string& name, const std::vector<int>& xs,
                        const std::vector<double>& ys) {
  std::printf("series %-24s", (name + ":").c_str());
  for (size_t i = 0; i < xs.size(); ++i) {
    std::printf(" %d=%s", xs[i], Pct(ys[i]).c_str());
  }
  std::printf("\n");
}

inline void PrintHeader(const std::string& title, const std::string& paper_shape) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("paper expectation: %s\n\n", paper_shape.c_str());
}

}  // namespace jecb::bench
