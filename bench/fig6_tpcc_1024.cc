// Figure 6: TPC-C, 1024 warehouses — Schism at very low coverages (0.1%,
// 0.2% of the database) against JECB, across partition counts.
//
// Paper shape: at this scale Schism's tiny training sets cannot cover the
// database and quality collapses, while JECB still recovers the warehouse
// partitioning and stays flat.
#include "bench_util.h"
#include "workloads/tpcc.h"

using namespace jecb;
using namespace jecb::bench;

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Figure 6: TPC-C 1024 warehouses",
              "JECB flat; Schism 0.1%/0.2% coverage far worse at all k");

  TpccConfig cfg;
  cfg.warehouses = 1024;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 5;
  cfg.items = 20;
  cfg.initial_orders_per_district = 1;
  cfg.min_order_lines = 4;
  cfg.max_order_lines = 8;
  TpccWorkload workload(cfg);

  WorkloadBundle bundle = workload.Make(30000, 2);
  auto [full_train, test] = bundle.trace.SplitTrainTest(0.25);

  const std::vector<int> ks = {8, 32, 128, 512, 1024};
  struct CoverageLevel {
    const char* label;
    size_t txns;
  };
  const CoverageLevel levels[] = {{"schism 0.1%", 40}, {"schism 0.2%", 80}};

  AsciiTable table({"approach", "coverage", "k", "test cost", "cpu s", "detail"});
  std::vector<double> jecb_series;
  std::vector<std::vector<double>> schism_series(2);

  for (int k : ks) {
    RunResult jecb = RunJecb(bundle.db.get(), bundle.procedures, full_train, test, k);
    jecb_series.push_back(jecb.test_cost);
    table.AddRow({"JECB", Pct(Coverage(*bundle.db, full_train)), std::to_string(k),
                  Pct(jecb.test_cost), FormatDouble(jecb.cpu_seconds, 1), jecb.detail});
    for (size_t li = 0; li < 2; ++li) {
      Trace train = full_train.Head(levels[li].txns);
      RunResult schism = RunSchism(bundle.db.get(), train, test, k, levels[li].label);
      schism_series[li].push_back(schism.test_cost);
      table.AddRow({levels[li].label, Pct(Coverage(*bundle.db, train)),
                    std::to_string(k), Pct(schism.test_cost),
                    FormatDouble(schism.cpu_seconds, 1), schism.detail});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  PrintSeries("JECB", ks, jecb_series);
  PrintSeries(levels[0].label, ks, schism_series[0]);
  PrintSeries(levels[1].label, ks, schism_series[1]);
  FinishObs(argc, argv);
  return 0;
}
