// Saturation curves: open-loop replay (runtime/load_gen.h) of the same
// JECB-partitioned TPC-C workload at a sweep of offered loads, JECB vs a
// naive-hash layout, at 2/4/8 shards. A closed-loop client self-throttles
// to capacity, so it can never show the latency cliff; the open-loop driver
// offers load on a schedule regardless of completions, which is the shape
// that makes "JECB sustains 2x the offered load of hash partitioning at
// equal p99" a measurable sentence.
//
// Per (layout, shard count):
//   1. measure closed-loop capacity (the usual racing clients), then
//   2. sweep target_tps over fractions of that capacity (~10% -> ~130%),
//      Poisson arrivals, bounded admission queue, recording goodput and the
//      sojourn split (queue_wait vs service) at each point.
//
// Also asserts two identity contracts on the way:
//   - a sub-saturation open-loop run (unbounded admission queue, so
//     shed == 0) reproduces the closed-loop OutcomeSignature bit-for-bit;
//   - --pin_threads changes timing only: pinned and unpinned closed-loop
//     runs have identical signatures.
//
// Emits BENCH_latency_curve.json. The CI perf gate key is
// jecb_goodput_at_80pct_per_sec: JECB goodput at 80%-of-capacity offered
// load on the smallest swept shard count — open-loop goodput at a healthy
// utilization, the number that regresses when admission or the topology
// runtime gets slower. `--quick` (CI bench-smoke) restricts to 2 shards, a
// short trace and 3 sweep points.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dist/replay.h"
#include "partition/solution.h"
#include "workloads/tpcc.h"

using namespace jecb;
using namespace jecb::bench;

namespace {

struct CurvePoint {
  double fraction = 0.0;    ///< of measured closed-loop capacity
  double target_tps = 0.0;
  double offered_tps = 0.0;
  double goodput_tps = 0.0;
  uint64_t shed = 0;
  double sojourn_p50_us = 0.0;
  double sojourn_p95_us = 0.0;
  double sojourn_p99_us = 0.0;
  double queue_wait_p99_us = 0.0;
};

struct Curve {
  std::string layout;  ///< "jecb" | "hash"
  int shards = 0;
  double capacity_tps = 0.0;  ///< closed-loop goodput
  std::vector<CurvePoint> points;
};

RuntimeOptions BaseOptions(int clients, bool pin) {
  RuntimeOptions opt;
  opt.num_clients = clients;
  opt.local_work_us = 2;
  opt.round_trip_us = 60;
  opt.lock_hold_us = 2;
  opt.pin_threads = pin;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  InitObs(argc, argv);
  // --quick is a bare flag (no value), so scan argv directly rather than
  // going through ArgValue's --flag value convention.
  bool is_quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") is_quick = true;
  }

  PrintHeader("Open-loop saturation curves: JECB vs naive hash",
              "throughput tracks offered load until capacity then plateaus; "
              "JECB's curve plateaus at a higher offered load than hash at "
              "equal p99 sojourn");
  const std::string out_dir = OutDir(argc, argv);
  const size_t num_txns = static_cast<size_t>(
      ArgInt(argc, argv, "--txns", is_quick ? 800 : 3000));
  const int clients = static_cast<int>(ArgInt(argc, argv, "--clients", 4));
  const int only_shards = static_cast<int>(ArgInt(argc, argv, "--shards", 0));
  const bool pin = ArgInt(argc, argv, "--pin_threads", 0) != 0;

  TpccConfig cfg;
  cfg.warehouses = 8;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 25;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(num_txns, 42);
  std::printf("trace: %zu txns, %d clients%s\n\n", bundle.trace.size(), clients,
              pin ? ", pinned" : "");

  std::vector<int> shard_counts;
  for (int k : is_quick ? std::vector<int>{2} : std::vector<int>{2, 4, 8}) {
    if (only_shards == 0 || only_shards == k) shard_counts.push_back(k);
  }
  const std::vector<double> fractions =
      is_quick ? std::vector<double>{0.5, 0.8, 1.2}
               : std::vector<double>{0.1, 0.25, 0.5, 0.8, 1.0, 1.15, 1.3};

  bool open_loop_signature_identical = true;
  bool pinned_signature_identical = true;
  double gate_goodput = 0.0;  ///< JECB @ 0.8 capacity, smallest shard count
  std::vector<Curve> curves;

  AsciiTable table({"layout", "shards", "offered/capacity", "target_tps",
                    "goodput_tps", "shed", "sojourn p50/p95/p99 us",
                    "queue_wait p99 us"});

  for (int k : shard_counts) {
    JecbOptions jopt;
    jopt.num_partitions = k;
    auto res =
        Jecb(jopt).Partition(bundle.db.get(), bundle.procedures, bundle.trace);
    CheckOk(res.status(), "jecb");
    const DatabaseSolution jecb_solution = res.value().solution;
    const DatabaseSolution hash_solution =
        MakeNaiveHashSolution(*bundle.db, k);

    struct Layout {
      const char* name;
      const DatabaseSolution* solution;
    };
    for (const Layout& layout : {Layout{"jecb", &jecb_solution},
                                 Layout{"hash", &hash_solution}}) {
      Curve curve;
      curve.layout = layout.name;
      curve.shards = k;

      // 1. Closed-loop capacity.
      RuntimeOptions copt = BaseOptions(clients, pin);
      ReplayReport closed =
          Replay(*bundle.db, *layout.solution, bundle.trace, copt,
                 std::string(layout.name) + "-k" + std::to_string(k) +
                     "-closed");
      curve.capacity_tps = closed.goodput_tps;

      // Identity contract: pinning is performance-only. One unpinned
      // counter-run per curve when pinning is on (and vice versa once,
      // cheaply, on the first curve when it is off).
      if (curves.empty()) {
        RuntimeOptions alt = BaseOptions(clients, !pin);
        ReplayReport other = Replay(*bundle.db, *layout.solution, bundle.trace,
                                    alt, "pin-identity");
        if (other.OutcomeSignature() != closed.OutcomeSignature()) {
          pinned_signature_identical = false;
        }
      }

      // Identity contract: sub-saturation open loop == closed loop. The
      // admission queue is unbounded here so shed is structurally zero and
      // the executed set is exactly the trace.
      {
        RuntimeOptions oopt = BaseOptions(clients, pin);
        oopt.target_tps = std::max(curve.capacity_tps * 0.5, 1.0);
        oopt.arrival = ArrivalProcess::kPoisson;
        oopt.admission_queue_depth = 0;  // unbounded: never sheds
        ReplayReport open = Replay(*bundle.db, *layout.solution, bundle.trace,
                                   oopt,
                                   std::string(layout.name) + "-k" +
                                       std::to_string(k) + "-identity");
        if (open.shed != 0 ||
            open.OutcomeSignature() != closed.OutcomeSignature()) {
          open_loop_signature_identical = false;
          std::fprintf(stderr,
                       "FATAL: open-loop signature diverged (%s k=%d, "
                       "shed=%llu)\n",
                       layout.name, k,
                       static_cast<unsigned long long>(open.shed));
        }
      }

      // 2. The sweep. Bounded admission queue: above capacity the queue
      // fills and arrivals shed, which is exactly the behavior under test.
      for (double f : fractions) {
        RuntimeOptions oopt = BaseOptions(clients, pin);
        oopt.target_tps = std::max(curve.capacity_tps * f, 1.0);
        oopt.arrival = ArrivalProcess::kPoisson;
        oopt.admission_queue_depth = 256;
        ReplayReport r = Replay(
            *bundle.db, *layout.solution, bundle.trace, oopt,
            std::string(layout.name) + "-k" + std::to_string(k) + "-f" +
                FormatDouble(f, 2));
        CurvePoint p;
        p.fraction = f;
        p.target_tps = oopt.target_tps;
        p.offered_tps = r.offered_tps;
        p.goodput_tps = r.goodput_tps;
        p.shed = r.shed;
        p.sojourn_p50_us = r.sojourn.p50_us;
        p.sojourn_p95_us = r.sojourn.p95_us;
        p.sojourn_p99_us = r.sojourn.p99_us;
        p.queue_wait_p99_us = r.queue_wait.p99_us;
        curve.points.push_back(p);
        table.AddRow({curve.layout, std::to_string(k), Pct(f),
                      FormatDouble(p.target_tps, 0),
                      FormatDouble(p.goodput_tps, 0), std::to_string(p.shed),
                      FormatDouble(p.sojourn_p50_us, 0) + "/" +
                          FormatDouble(p.sojourn_p95_us, 0) + "/" +
                          FormatDouble(p.sojourn_p99_us, 0),
                      FormatDouble(p.queue_wait_p99_us, 0)});

        if (curve.layout == "jecb" && k == shard_counts.front() &&
            f > 0.79 && f < 0.81) {
          gate_goodput = p.goodput_tps;
        }
      }
      curves.push_back(std::move(curve));
    }

    // Headline comparison at this shard count: the offered load each layout
    // absorbed without shedding, and the p99 sojourn it paid at 80%.
    const Curve& jc = curves[curves.size() - 2];
    const Curve& hc = curves.back();
    std::printf(
        "k=%d: capacity jecb %.0f tps vs hash %.0f tps (%.2fx)\n", k,
        jc.capacity_tps, hc.capacity_tps,
        hc.capacity_tps > 0 ? jc.capacity_tps / hc.capacity_tps : 0.0);
  }
  std::printf("\n%s\n", table.ToString().c_str());
  std::printf("open_loop_signature_identical: %s\n",
              open_loop_signature_identical ? "true" : "false");
  std::printf("pinned_signature_identical: %s\n",
              pinned_signature_identical ? "true" : "false");
  if (!open_loop_signature_identical || !pinned_signature_identical) return 1;

  std::string json = "{\n  \"bench\": \"latency_curve\",\n";
  json += "  \"mode\": \"" + std::string(is_quick ? "quick" : "full") + "\",\n";
  json += "  \"txns\": " + std::to_string(bundle.trace.size()) + ",\n";
  json += "  \"clients\": " + std::to_string(clients) + ",\n";
  json += "  \"open_loop_signature_identical\": " +
          std::string(open_loop_signature_identical ? "true" : "false") + ",\n";
  json += "  \"pinned_signature_identical\": " +
          std::string(pinned_signature_identical ? "true" : "false") + ",\n";
  json += "  \"jecb_goodput_at_80pct_per_sec\": " +
          FormatDouble(gate_goodput, 0) + ",\n";
  json += "  \"curves\": [\n";
  for (size_t c = 0; c < curves.size(); ++c) {
    const Curve& curve = curves[c];
    json += "    {\"layout\": \"" + curve.layout +
            "\", \"shards\": " + std::to_string(curve.shards) +
            ", \"capacity_tps\": " + FormatDouble(curve.capacity_tps, 0) +
            ", \"points\": [";
    for (size_t i = 0; i < curve.points.size(); ++i) {
      const CurvePoint& p = curve.points[i];
      if (i > 0) json += ", ";
      json += "{\"fraction\": " + FormatDouble(p.fraction, 2) +
              ", \"target_tps\": " + FormatDouble(p.target_tps, 0) +
              ", \"offered_tps\": " + FormatDouble(p.offered_tps, 0) +
              ", \"goodput_tps\": " + FormatDouble(p.goodput_tps, 0) +
              ", \"shed\": " + std::to_string(p.shed) +
              ", \"sojourn_p50_us\": " + FormatDouble(p.sojourn_p50_us, 1) +
              ", \"sojourn_p95_us\": " + FormatDouble(p.sojourn_p95_us, 1) +
              ", \"sojourn_p99_us\": " + FormatDouble(p.sojourn_p99_us, 1) +
              ", \"queue_wait_p99_us\": " +
              FormatDouble(p.queue_wait_p99_us, 1) + "}";
    }
    json += "]}";
    json += c + 1 < curves.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  WriteBenchJson(out_dir, "latency_curve", json);

  FinishObs(argc, argv);
  return 0;
}
