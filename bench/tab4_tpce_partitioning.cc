// Table 4: final per-table partitioning solutions for TPC-E — the
// Horticulture solution (as supplied by its authors, reproduced verbatim)
// next to JECB's join-extension solution.
//
// Paper shape: JECB replicates the 22 read-only tables plus BROKER and
// routes every remaining table to the customer id through join paths
// (CT/SE/TH/HH/TR via TRADE -> CA -> C; HOLDING_SUMMARY via CA -> C; TRADE
// via CA -> C); Horticulture hash-partitions each table on one local column
// and replicates CUSTOMER_ACCOUNT and TRADE_REQUEST.
#include "bench_util.h"
#include "workloads/tpce.h"

using namespace jecb;
using namespace jecb::bench;

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Table 4: per-table partitioning solutions for TPC-E",
              "JECB: customer-rooted join paths, BROKER replicated; "
              "HC: one local column per table");

  TpceConfig cfg;
  cfg.customers = 600;
  WorkloadBundle bundle = TpceWorkload(cfg).Make(16000, 3);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);

  JecbOptions opt;
  opt.num_partitions = 8;
  auto result = Jecb(opt).Partition(bundle.db.get(), bundle.procedures, train);
  CheckOk(result.status(), "tab4");
  const Schema& s = bundle.db->schema();
  DatabaseSolution hc = HorticulturePaperTpceSolution(*bundle.db, 8);

  AsciiTable table({"Table", "HC (paper)", "JECB join-extension"});
  for (size_t t = 0; t < s.num_tables(); ++t) {
    auto tid = static_cast<TableId>(t);
    const Table& meta = s.table(tid);
    const TablePartitioner* hp = hc.Get(tid);
    const TablePartitioner* jp = result.value().solution.Get(tid);
    std::string jd;
    if (meta.access_class == AccessClass::kReadOnly) {
      jd = "replicated (read-only)";
    } else if (meta.access_class == AccessClass::kReadMostly) {
      jd = "replicated (read-mostly)";
    } else {
      jd = jp != nullptr ? jp->Describe(s) : "replicated";
    }
    table.AddRow({meta.name, hp != nullptr ? hp->Describe(s) : "replicated", jd});
  }
  std::printf("%s\n", table.ToString().c_str());

  EvalResult jecb_ev = Evaluate(*bundle.db, result.value().solution, test);
  EvalResult hc_ev = Evaluate(*bundle.db, hc, test);
  std::printf("overall test cost: JECB %s vs Horticulture %s\n",
              Pct(jecb_ev.cost()).c_str(), Pct(hc_ev.cost()).c_str());
  FinishObs(argc, argv);
  return 0;
}
