// Fault-tolerance replay: the paper's whole value proposition is that fewer
// distributed transactions means less exposure to coordination failures
// (Sec. 2), so this bench injects deterministic 2PC faults — prepare
// rejections, shard stalls, coordinator timeouts, transient shard-down
// windows — at increasing rates and measures how JECB's and naive-hash's
// *goodput* (committed txns per second) degrade. JECB, with ~10% distributed
// transactions, should degrade strictly less than naive hash, whose ~100%
// distributed workload pays every fault, retry, and backoff.
//
// Also asserts the determinism contract: a faulted replay's outcome
// signature (commits, failures, aborts, per-shard fault counts) is
// bit-identical at 1/4/8 client threads for a fixed seed, and prints the
// analytic CoordinationExposure from the static evaluator next to the
// measured exposure. Emits BENCH_fault_tolerance.json to --out_dir
// (default: the build directory); --txns scales the trace for CI smoke.
#include <cstdio>

#include "bench_util.h"
#include "dist/replay.h"
#include "workloads/tpcc.h"

using namespace jecb;
using namespace jecb::bench;

namespace {

struct FaultRow {
  std::string approach;
  double fault_rate = 0.0;
  ReplayReport report;
  double degradation = 0.0;  // 1 - goodput / fault-free goodput
  double exposure_analytic = 0.0;
  double min_availability = 1.0;
};

RuntimeOptions BaseOptions(int clients) {
  RuntimeOptions opt;
  opt.num_clients = clients;
  opt.local_work_us = 2;
  opt.round_trip_us = 60;
  opt.lock_hold_us = 2;
  opt.max_queue_depth = 64;  // stalls backpressure instead of queueing forever
  return opt;
}

FaultPlan PlanAtRate(double rate) {
  FaultPlan plan;
  plan.stall_rate = rate;
  plan.stall_us = 150;
  plan.prepare_reject_rate = rate;
  plan.coordinator_timeout_rate = rate / 2.0;
  plan.timeout_us = 300;
  plan.shard_down_rate = rate;
  plan.max_attempts = 4;
  plan.backoff_base_us = 50;
  plan.backoff_cap_us = 1000;
  return plan;
}

double MinAvailability(const ReplayReport& r) {
  double m = 1.0;
  for (const ShardReport& s : r.shards) m = std::min(m, s.availability());
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Fault tolerance: goodput under injected 2PC coordination faults",
              "JECB's low distributed fraction shields it — its goodput "
              "degrades strictly less than naive-hash at every fault rate");
  const std::string out_dir = OutDir(argc, argv);
  const size_t num_txns = static_cast<size_t>(ArgInt(argc, argv, "--txns", 4000));
  const int clients = static_cast<int>(ArgInt(argc, argv, "--clients", 8));
  const int k = 8;

  TpccConfig cfg;
  cfg.warehouses = 16;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 30;
  cfg.initial_orders_per_district = 2;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(num_txns, 1);
  auto [train, test] = bundle.trace.SplitTrainTest(0.25);
  std::printf("trace: %zu txns total, %zu train / %zu test, k=%d, %d clients\n",
              bundle.trace.size(), train.size(), test.size(), k, clients);

  JecbOptions jopt;
  jopt.num_partitions = k;
  auto jecb_res = Jecb(jopt).Partition(bundle.db.get(), bundle.procedures, train);
  CheckOk(jecb_res.status(), "jecb");
  const DatabaseSolution& jecb_solution = jecb_res.value().solution;
  DatabaseSolution hash_solution = MakeNaiveHashSolution(*bundle.db, k);

  EvalResult jecb_eval = Evaluate(*bundle.db, jecb_solution, test);
  EvalResult hash_eval = Evaluate(*bundle.db, hash_solution, test);
  std::printf("static cost: JECB %s, naive-hash %s\n\n",
              Pct(jecb_eval.cost()).c_str(), Pct(hash_eval.cost()).c_str());

  const std::vector<double> rates = {0.0, 0.01, 0.05, 0.10};
  AsciiTable table({"approach", "fault rate", "goodput (txn/s)", "degradation",
                    "failed", "aborts", "retries", "exposure (analytic)",
                    "min shard avail"});
  std::vector<FaultRow> rows;

  auto run_series = [&](const std::string& label,
                        const DatabaseSolution& solution,
                        const EvalResult& eval) {
    double baseline_goodput = 0.0;
    for (double rate : rates) {
      RuntimeOptions opt = BaseOptions(clients);
      opt.faults = PlanAtRate(rate);
      FaultRow row;
      row.approach = label;
      row.fault_rate = rate;
      row.report = Replay(*bundle.db, solution, test, opt,
                          label + "-fault" + FormatDouble(rate, 2));
      row.report.PublishTo(MetricsRegistry::Default());  // for --metrics_out
      if (rate == 0.0) baseline_goodput = row.report.goodput_tps;
      row.degradation = baseline_goodput > 0.0
                            ? 1.0 - row.report.goodput_tps / baseline_goodput
                            : 0.0;
      row.exposure_analytic = CoordinationExposure(eval, rate);
      row.min_availability = MinAvailability(row.report);
      table.AddRow({label, Pct(rate), FormatDouble(row.report.goodput_tps, 0),
                    Pct(row.degradation), std::to_string(row.report.failed),
                    std::to_string(row.report.aborts),
                    std::to_string(row.report.retries),
                    Pct(row.exposure_analytic), Pct(row.min_availability)});
      rows.push_back(row);
    }
  };
  run_series("JECB", jecb_solution, jecb_eval);
  run_series("naive-hash", hash_solution, hash_eval);
  std::printf("%s\n", table.ToString().c_str());

  // Acceptance check 1: at a 5% fault rate JECB's goodput degrades strictly
  // less than naive-hash's.
  auto find_row = [&](const std::string& approach, double rate) -> const FaultRow& {
    for (const FaultRow& r : rows) {
      if (r.approach == approach && r.fault_rate == rate) return r;
    }
    std::fprintf(stderr, "FATAL: missing row %s@%.2f\n", approach.c_str(), rate);
    std::exit(1);
  };
  const FaultRow& jecb5 = find_row("JECB", 0.05);
  const FaultRow& hash5 = find_row("naive-hash", 0.05);
  std::printf("degradation at 5%% faults: JECB %s vs naive-hash %s\n",
              Pct(jecb5.degradation).c_str(), Pct(hash5.degradation).c_str());
  if (!(jecb5.degradation < hash5.degradation)) {
    std::fprintf(stderr,
                 "FATAL: JECB goodput degradation (%.4f) is not strictly below "
                 "naive-hash (%.4f) at a 5%% fault rate\n",
                 jecb5.degradation, hash5.degradation);
    return 1;
  }
  // Failed-txn exposure should order the same way (JECB coordinates less).
  if (jecb5.report.failed > hash5.report.failed) {
    std::fprintf(stderr, "FATAL: JECB failed more txns than naive-hash (%llu > %llu)\n",
                 static_cast<unsigned long long>(jecb5.report.failed),
                 static_cast<unsigned long long>(hash5.report.failed));
    return 1;
  }

  // Acceptance check 2: faulted replay outcomes are bit-identical across
  // client thread counts for the fixed seed.
  uint64_t signature = 0;
  for (int c : {1, 4, 8}) {
    RuntimeOptions opt = BaseOptions(c);
    opt.faults = PlanAtRate(0.05);
    ReplayReport r = Replay(*bundle.db, jecb_solution, test, opt, "determinism");
    if (c == 1) {
      signature = r.OutcomeSignature();
    } else if (r.OutcomeSignature() != signature) {
      std::fprintf(stderr,
                   "FATAL: fault replay outcome diverged at %d clients "
                   "(signature %llx != %llx)\n",
                   c, static_cast<unsigned long long>(r.OutcomeSignature()),
                   static_cast<unsigned long long>(signature));
      return 1;
    }
  }
  std::printf("determinism: outcome signature %llx identical at 1/4/8 clients\n",
              static_cast<unsigned long long>(signature));

  std::string json = "{\n  \"bench\": \"fault_tolerance\",\n  \"partitions\": " +
                     std::to_string(k) + ",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const FaultRow& r = rows[i];
    json += "    {\"approach\": \"" + r.approach + "\", \"fault_rate\": " +
            FormatDouble(r.fault_rate, 2) + ", \"degradation\": " +
            FormatDouble(r.degradation, 4) + ", \"exposure_analytic\": " +
            FormatDouble(r.exposure_analytic, 4) + ", \"min_availability\": " +
            FormatDouble(r.min_availability, 4) + ",\n     \"report\": " +
            r.report.ToJson() + "}";
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  WriteBenchJson(out_dir, "fault_tolerance", json);
  FinishObs(argc, argv);
  return 0;
}
