// Ablations of the design choices DESIGN.md calls out, on TPC-E and TPC-C:
//   1. partial solutions (Sec. 5.3) on/off — Trade-Order/Result/Status's
//      CA_ID partials are what let the customer attribute cover the trade
//      tables once BROKER is replicated;
//   2. implicit-join discovery via SELECT-clause attributes (Sec. 5.1);
//   3. the quasi-independence tier (the epsilon-relaxation of Definition 7
//      that handles TPC-C's inherent remote accesses);
//   4. the statistics fallback (Sec. 5.3).
// Also prints the search-space reduction of the Phase-3 heuristics.
#include "bench_util.h"
#include "workloads/tpcc.h"
#include "workloads/tpce.h"

using namespace jecb;
using namespace jecb::bench;

namespace {

struct Variant {
  const char* name;
  JecbOptions options;
};

void RunVariants(const char* title, const Workload& workload, size_t txns) {
  std::printf("--- %s ---\n", title);
  WorkloadBundle bundle = workload.Make(txns, 5);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);

  std::vector<Variant> variants;
  variants.push_back({"full JECB", {}});
  {
    JecbOptions o;
    o.class_partitioner.enable_partial_solutions = false;
    variants.push_back({"no partial solutions", o});
  }
  {
    JecbOptions o;
    o.join_graph.use_select_clause_attrs = false;
    variants.push_back({"no SELECT-clause joins", o});
  }
  {
    JecbOptions o;
    o.class_partitioner.quasi_tolerance = 0.0;
    variants.push_back({"strict Definition 7", o});
  }
  {
    JecbOptions o;
    o.class_partitioner.enable_stats_fallback = false;
    o.class_partitioner.enable_range_quasi = false;
    variants.push_back({"no statistics fallback", o});
  }

  AsciiTable table({"variant", "test cost", "chosen attr", "naive space",
                    "combos evaluated", "cpu s"});
  for (auto& variant : variants) {
    variant.options.num_partitions = 8;
    ResourceMeter meter;
    auto res =
        Jecb(variant.options).Partition(bundle.db.get(), bundle.procedures, train);
    auto usage = meter.Stop();
    CheckOk(res.status(), "ablation");
    EvalResult ev = Evaluate(*bundle.db, res.value().solution, test);
    char space[32];
    std::snprintf(space, sizeof(space), "%.3g",
                  res.value().combiner_report.naive_search_space);
    table.AddRow({variant.name, Pct(ev.cost()), res.value().combiner_report.chosen_attr,
                  space,
                  std::to_string(res.value().combiner_report.evaluated_combinations),
                  FormatDouble(usage.cpu_seconds, 1)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Ablations: JECB design choices",
              "partial solutions and the quasi tier matter on TPC-E/TPC-C; "
              "the heuristics cut the search space by orders of magnitude");

  TpceConfig tpce;
  tpce.customers = 500;
  RunVariants("TPC-E", TpceWorkload(tpce), 12000);

  TpccConfig tpcc;
  tpcc.warehouses = 8;
  tpcc.districts_per_warehouse = 6;
  tpcc.customers_per_district = 20;
  RunVariants("TPC-C", TpccWorkload(tpcc), 10000);
  FinishObs(argc, argv);
  return 0;
}
