// End-to-end throughput replay (paper Fig. 1 narrative): the static
// "% distributed transactions" metric the rest of the benches report is only
// a proxy — this binary replays the TPC-C test trace through the partitioned
// execution runtime, where every distributed transaction pays two simulated
// 2PC round trips and holds its participants' locks across the prepare/vote
// trip. Compared: JECB, Schism, naive per-table hash partitioning, and a
// single-machine (1-partition) baseline, at several partition counts.
//
// Emits a paper-style ASCII table, throughput series, and a JSON array
// (one replay report per configuration) to BENCH_throughput_tpcc.json in
// --out_dir (default: the build directory). --txns scales the trace for
// CI smoke runs.
#include <cstdio>

#include "bench_util.h"
#include "dist/replay.h"
#include "workloads/tpcc.h"

using namespace jecb;
using namespace jecb::bench;

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Throughput: TPC-C replay through the partitioned runtime",
              "JECB sustains near-local throughput at every k; naive hash "
              "collapses as almost every transaction becomes distributed "
              "(Fig. 1's cliff)");
  const std::string out_dir = OutDir(argc, argv);
  const size_t num_txns =
      static_cast<size_t>(ArgInt(argc, argv, "--txns", 8000));

  TpccConfig cfg;
  cfg.warehouses = 16;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 30;
  cfg.initial_orders_per_district = 2;
  TpccWorkload workload(cfg);

  WorkloadBundle bundle = workload.Make(num_txns, 1);
  auto [train, test] = bundle.trace.SplitTrainTest(0.25);
  std::printf("trace: %zu txns total, %zu train / %zu test, coverage %s\n",
              bundle.trace.size(), train.size(), test.size(),
              Pct(Coverage(*bundle.db, train)).c_str());

  RuntimeOptions opt;
  opt.num_clients = 8;
  opt.local_work_us = 2;
  opt.round_trip_us = 150;
  opt.lock_hold_us = 5;
  std::printf("simulated cluster: local_work=%uus, 2PC round_trip=%uus, "
              "lock_hold=%uus, %d closed-loop clients\n",
              opt.local_work_us, opt.round_trip_us, opt.lock_hold_us,
              opt.num_clients);

  AsciiTable table({"approach", "k", "static cost", "measured dist", "tput (txn/s)",
                    "local p50/p95/p99 us", "dist p50/p95/p99 us", "repl factor"});
  std::vector<std::string> json_reports;
  const std::vector<int> ks = {4, 8, 16};
  std::vector<double> jecb_tput, schism_tput, hash_tput;

  auto run_one = [&](const std::string& label, const DatabaseSolution& solution,
                     int k) -> ReplayReport {
    EvalResult st = Evaluate(*bundle.db, solution, test);
    ReplayReport rep =
        Replay(*bundle.db, solution, test, opt, label + "-k" + std::to_string(k));
    auto lat3 = [](const LatencyReport& l) {
      return FormatDouble(l.p50_us, 0) + "/" + FormatDouble(l.p95_us, 0) + "/" +
             FormatDouble(l.p99_us, 0);
    };
    table.AddRow({label, std::to_string(k), Pct(st.cost()),
                  Pct(rep.distributed_fraction()),
                  FormatDouble(rep.throughput_tps, 0), lat3(rep.local),
                  lat3(rep.distributed), FormatDouble(rep.replication_factor, 2)});
    json_reports.push_back(rep.ToJson());
    rep.PublishTo(MetricsRegistry::Default());  // picked up by --metrics_out
    if (rep.distributed_committed != st.distributed_txns) {
      std::printf("WARNING: measured distributed count %llu != static %llu (%s)\n",
                  static_cast<unsigned long long>(rep.distributed_committed),
                  static_cast<unsigned long long>(st.distributed_txns),
                  label.c_str());
    }
    return rep;
  };

  // Single-machine baseline: one partition, every transaction local.
  {
    DatabaseSolution single = MakeNaiveHashSolution(*bundle.db, 1);
    run_one("single-machine", single, 1);
  }

  for (int k : ks) {
    // JECB (trains on the train split, replays the held-out test split).
    JecbOptions jopt;
    jopt.num_partitions = k;
    auto jecb_res = Jecb(jopt).Partition(bundle.db.get(), bundle.procedures, train);
    CheckOk(jecb_res.status(), "jecb");
    jecb_tput.push_back(
        run_one("JECB", jecb_res.value().solution, k).throughput_tps);

    // Schism on the same training data.
    SchismOptions sopt;
    sopt.num_partitions = k;
    auto schism_res = Schism(sopt).Partition(bundle.db.get(), train);
    CheckOk(schism_res.status(), "schism");
    schism_tput.push_back(
        run_one("Schism", schism_res.value().solution, k).throughput_tps);

    // Naive hash: each table independently hash-partitioned by PK.
    DatabaseSolution hash = MakeNaiveHashSolution(*bundle.db, k);
    hash_tput.push_back(run_one("naive-hash", hash, k).throughput_tps);
  }

  std::printf("%s\n", table.ToString().c_str());
  auto print_tput_series = [&](const char* name, const std::vector<double>& ys) {
    std::printf("series %-16s", (std::string(name) + ":").c_str());
    for (size_t i = 0; i < ks.size(); ++i) {
      std::printf(" %d=%.0ftps", ks[i], ys[i]);
    }
    std::printf("\n");
  };
  print_tput_series("JECB", jecb_tput);
  print_tput_series("Schism", schism_tput);
  print_tput_series("naive-hash", hash_tput);

  std::string json = "[\n";
  for (size_t i = 0; i < json_reports.size(); ++i) {
    json += "  " + json_reports[i] + (i + 1 < json_reports.size() ? ",\n" : "\n");
  }
  json += "]\n";
  std::printf("\n%zu replay reports: ", json_reports.size());
  WriteBenchJson(out_dir, "throughput_tpcc", json);
  FinishObs(argc, argv);
  return 0;
}
