// Exchange throughput: rows/sec shipped by the exchange-style tuple routing
// layer versus the slice-only baseline (exchange disabled — 2PC votes cross
// the wire but read payloads never do), on the same JECB-partitioned TPC-C
// trace at 2/4/8 shards over Unix-domain sockets.
//
// Three rows per shard count: an in-process reference (exchange on), the
// socket backend with exchange on, and the socket backend with exchange off.
// The bench is also an acceptance gate — it exits non-zero when the socket
// backend's outcome signature OR assembled-payload digest diverges from the
// in-process reference, or when any shard child exits abnormally. Emits
// BENCH_exchange_throughput.json to --out_dir (default: the build
// directory); --txns scales the trace, --shards N restricts the sweep
// (CI smoke runs `--shards 4 --txns 800`), --batch_bytes overrides the
// per-batch payload budget.
#include <cstdio>

#include "bench_util.h"
#include "dist/replay.h"
#include "workloads/tpcc.h"

using namespace jecb;
using namespace jecb::bench;

namespace {

struct BenchRow {
  int shards = 0;
  bool exchange = false;
  ReplayReport report;
};

RuntimeOptions OptionsFor(TransportKind transport, int clients, bool exchange,
                          uint32_t batch_bytes) {
  RuntimeOptions opt;
  opt.transport = transport;
  opt.num_clients = clients;
  opt.local_work_us = 2;
  opt.round_trip_us = 60;
  opt.lock_hold_us = 2;
  opt.exchange_enabled = exchange;
  if (batch_bytes != 0) opt.exchange_batch_bytes = batch_bytes;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Exchange throughput: tuple routing vs slice-only baseline",
              "rows/sec and MB/sec of actual read payloads shipped shard-to-"
              "shard and home-to-coordinator, with the slice-only replay as "
              "the no-payload control");
  const std::string out_dir = OutDir(argc, argv);
  const size_t num_txns = static_cast<size_t>(ArgInt(argc, argv, "--txns", 3000));
  const int clients = static_cast<int>(ArgInt(argc, argv, "--clients", 4));
  const int only_shards = static_cast<int>(ArgInt(argc, argv, "--shards", 0));
  const uint32_t batch_bytes =
      static_cast<uint32_t>(ArgInt(argc, argv, "--batch_bytes", 0));

  TpccConfig cfg;
  cfg.warehouses = 8;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 25;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(num_txns, 42);
  std::printf("trace: %zu txns, %d clients\n\n", bundle.trace.size(), clients);

  std::vector<int> shard_counts;
  for (int k : {2, 4, 8}) {
    if (only_shards == 0 || only_shards == k) shard_counts.push_back(k);
  }
  if (shard_counts.empty()) {
    std::fprintf(stderr, "FATAL: --shards must be one of 2, 4, 8 (or 0 for all)\n");
    return 2;
  }

  AsciiTable table({"shards", "mode", "throughput (txn/s)", "exch rows/s",
                    "exch MB/s", "remote frac", "batches", "fanout p99",
                    "digest"});
  std::vector<BenchRow> rows;

  for (int k : shard_counts) {
    JecbOptions jopt;
    jopt.num_partitions = k;
    auto res = Jecb(jopt).Partition(bundle.db.get(), bundle.procedures,
                                    bundle.trace);
    CheckOk(res.status(), "jecb");
    const DatabaseSolution& solution = res.value().solution;

    // In-process reference: the exchange accounting is backend-invariant, so
    // this run defines the digest and signature the socket rows must match.
    ReplayReport ref = Replay(
        *bundle.db, solution, bundle.trace,
        OptionsFor(TransportKind::kInProcess, clients, true, batch_bytes),
        "inproc-exchange-k" + std::to_string(k));

    struct Mode {
      const char* name;
      bool exchange;
    };
    for (const Mode& mode : {Mode{"exchange", true}, Mode{"slice-only", false}}) {
      BenchRow row;
      row.shards = k;
      row.exchange = mode.exchange;
      row.report = Replay(*bundle.db, solution, bundle.trace,
                          OptionsFor(TransportKind::kUnixSocket, clients,
                                     mode.exchange, batch_bytes),
                          std::string(mode.name) + "-k" + std::to_string(k));
      row.report.PublishTo(MetricsRegistry::Default());
      const ReplayReport& r = row.report;
      const double rows_per_s =
          r.wall_seconds > 0.0
              ? static_cast<double>(r.exchange_tuples) / r.wall_seconds
              : 0.0;
      const double mb_per_s =
          r.wall_seconds > 0.0 ? static_cast<double>(r.exchange_bytes) /
                                     (1024.0 * 1024.0) / r.wall_seconds
                               : 0.0;
      const double remote_frac =
          r.exchange_tuples > 0
              ? static_cast<double>(r.exchange_remote_tuples) /
                    static_cast<double>(r.exchange_tuples)
              : 0.0;
      table.AddRow({std::to_string(k), mode.name,
                    FormatDouble(r.throughput_tps, 0),
                    FormatDouble(rows_per_s, 0), FormatDouble(mb_per_s, 2),
                    Pct(remote_frac), std::to_string(r.exchange_batches),
                    FormatDouble(r.exchange_fanout_hist.count > 0
                                     ? r.exchange_fanout_hist.Quantile(0.99)
                                     : 0.0,
                                 1),
                    std::to_string(r.exchange_digest)});
      rows.push_back(row);

      if (r.abnormal_shard_exits() > 0) {
        for (const ShardExitStatus& e : r.shard_exits) {
          if (e.shard >= 0 && !e.clean()) {
            std::fprintf(stderr,
                         "FATAL: shard %d exited abnormally (exit_code=%d "
                         "term_signal=%d forced_kill=%d) in %s at %d shards\n",
                         e.shard, e.exit_code, e.term_signal,
                         e.forced_kill ? 1 : 0, mode.name, k);
          }
        }
        return 1;
      }
      // Outcome parity: exchange is pure payload movement, so the signature
      // must match the reference whether exchange is on or off.
      if (r.OutcomeSignature() != ref.OutcomeSignature()) {
        std::fprintf(stderr,
                     "FATAL: %s outcome signature %llx != in-process %llx "
                     "at %d shards\n",
                     mode.name,
                     static_cast<unsigned long long>(r.OutcomeSignature()),
                     static_cast<unsigned long long>(ref.OutcomeSignature()),
                     k);
        return 1;
      }
      // Payload parity: with exchange on, the socket backend must assemble
      // byte-identical read sets (same digest, same row/byte totals) as the
      // in-process reference; with it off, everything must be zero.
      if (mode.exchange) {
        if (r.exchange_digest != ref.exchange_digest ||
            r.exchange_tuples != ref.exchange_tuples ||
            r.exchange_bytes != ref.exchange_bytes) {
          std::fprintf(stderr,
                       "FATAL: exchange payload divergence at %d shards: "
                       "digest %llx/%llx tuples %llu/%llu bytes %llu/%llu\n",
                       k, static_cast<unsigned long long>(r.exchange_digest),
                       static_cast<unsigned long long>(ref.exchange_digest),
                       static_cast<unsigned long long>(r.exchange_tuples),
                       static_cast<unsigned long long>(ref.exchange_tuples),
                       static_cast<unsigned long long>(r.exchange_bytes),
                       static_cast<unsigned long long>(ref.exchange_bytes));
          return 1;
        }
      } else if (r.exchange_tuples != 0 || r.exchange_digest != 0) {
        std::fprintf(stderr,
                     "FATAL: slice-only run shipped %llu exchange tuples at "
                     "%d shards\n",
                     static_cast<unsigned long long>(r.exchange_tuples), k);
        return 1;
      }
    }
    std::printf(
        "k=%d: signature + exchange digest identical to in-process reference\n",
        k);
  }
  std::printf("\n%s\n", table.ToString().c_str());

  std::string json = "{\n  \"bench\": \"exchange_throughput\",\n  \"clients\": " +
                     std::to_string(clients) + ",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    json += std::string("    {\"mode\": \"") +
            (rows[i].exchange ? "exchange" : "slice-only") +
            "\", \"shards\": " + std::to_string(rows[i].shards) +
            ",\n     \"report\": " + rows[i].report.ToJson() + "}";
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  WriteBenchJson(out_dir, "exchange_throughput", json);
  FinishObs(argc, argv);
  return 0;
}
