// Table 3: the 15 TPC-E transaction classes with their mix percentages and
// the total/partial solutions JECB finds in Phase 2, plus the Example 10
// search-space accounting (~2.6M naive combinations reduced to ~a dozen).
//
// Paper shape (roots up to key-foreign-key equivalence):
//   BrokerVolume: No | CustomerPosition: CA_C_ID | MarketFeed: No |
//   MarketWatch: HS_CA_ID | SecurityDetail: read-only |
//   TL-F1: No | TL-F2: CA_ID | TL-F3: T_S_SYMB (or T_DTS) | TL-F4: CA_ID |
//   TradeOrder/TradeResult/TradeStatus: B_ID with partial CA_ID |
//   TU-F1: No | TU-F2: CA_ID | TU-F3: T_S_SYMB (or T_DTS).
#include "bench_util.h"
#include "workloads/tpce.h"

using namespace jecb;
using namespace jecb::bench;

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Table 3: TPC-E transaction classes and JECB Phase-2 solutions",
              "see the class-by-class roots listed in the source header");

  TpceConfig cfg;
  cfg.customers = 600;
  WorkloadBundle bundle = TpceWorkload(cfg).Make(16000, 3);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);

  JecbOptions opt;
  opt.num_partitions = 8;
  auto result = Jecb(opt).Partition(bundle.db.get(), bundle.procedures, train);
  CheckOk(result.status(), "tab3");
  const JecbResult& r = result.value();

  std::printf("%s\n", FormatClassSolutions(bundle.db->schema(), r.classes).c_str());

  std::printf("Example 10 accounting:\n");
  std::printf("  naive search space : %.3g combinations\n",
              r.combiner_report.naive_search_space);
  std::printf("  after heuristics   : %llu combinations over %zu attributes\n",
              static_cast<unsigned long long>(r.combiner_report.evaluated_combinations),
              r.combiner_report.candidate_attrs.size());
  std::printf("  candidate attrs    : %s\n",
              Join(r.combiner_report.candidate_attrs, ", ").c_str());
  std::printf("  chosen attribute   : %s\n", r.combiner_report.chosen_attr.c_str());
  EvalResult ev = Evaluate(*bundle.db, r.solution, test);
  std::printf("  test cost          : %s (paper: 21%% at 8 partitions)\n",
              Pct(ev.cost()).c_str());
  std::printf("  partitioning time  : %.1f s (paper: < 2 minutes)\n",
              r.elapsed_seconds);
  FinishObs(argc, argv);
  return 0;
}
