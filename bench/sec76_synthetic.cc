// Section 7.6: synthetic workloads that do not respect the schema. One
// class joins along the declared foreign key; the other reaches the same
// data through an implicit (non-key-foreign-key) join. The mix of the two
// classes is swept with the partition count fixed at 100.
//
// Paper shape: join extension performs well while schema-respecting
// transactions dominate and degrades as the implicit-join class grows;
// column-based/tuple-statistics approaches (here: Schism) only perform well
// when implicit-join transactions dominate the workload enough to be
// learned from co-access statistics.
#include "bench_util.h"
#include "workloads/synthetic.h"

using namespace jecb;
using namespace jecb::bench;

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Section 7.6: synthetic implicit-join sweep (k = 100)",
              "JECB cost grows with the implicit mix; Schism tracks the "
              "smaller side of the conflict");

  const int32_t k = 100;
  const std::vector<int> mixes = {0, 10, 25, 50, 75, 90, 100};
  std::vector<double> jecb_series;
  std::vector<double> schism_series;

  AsciiTable table({"implicit mix", "JECB", "Schism", "JECB attr"});
  for (int mix : mixes) {
    SyntheticConfig cfg;
    cfg.parents = 400;
    cfg.groups = 400;
    cfg.implicit_join_fraction = mix / 100.0;
    WorkloadBundle bundle = SyntheticWorkload(cfg).Make(8000, 10 + mix);
    auto [train, test] = bundle.trace.SplitTrainTest(0.3);

    RunResult jecb = RunJecb(bundle.db.get(), bundle.procedures, train, test, k);
    RunResult schism = RunSchism(bundle.db.get(), train, test, k);
    jecb_series.push_back(jecb.test_cost);
    schism_series.push_back(schism.test_cost);
    table.AddRow({std::to_string(mix) + "%", Pct(jecb.test_cost),
                  Pct(schism.test_cost), jecb.detail});
  }
  std::printf("%s\n", table.ToString().c_str());
  PrintSeries("JECB", mixes, jecb_series);
  PrintSeries("Schism", mixes, schism_series);
  FinishObs(argc, argv);
  return 0;
}
