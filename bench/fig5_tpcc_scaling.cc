// Figure 5: TPC-C, 128 warehouses — % distributed transactions vs number of
// partitions, for Schism at three training coverages and for JECB.
//
// Paper shape: JECB matches the warehouse partitioning at every partition
// count (flat line at the workload's inherent remote-access floor); Schism
// is competitive at few partitions / high coverage and degrades as the
// partition count grows or coverage shrinks.
#include "bench_util.h"
#include "workloads/tpcc.h"

using namespace jecb;
using namespace jecb::bench;

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Figure 5: TPC-C 128 warehouses",
              "JECB flat at the remote-access floor for all k; Schism degrades "
              "with more partitions and less coverage");

  TpccConfig cfg;
  cfg.warehouses = 128;
  cfg.districts_per_warehouse = 3;
  cfg.customers_per_district = 8;
  cfg.items = 40;
  cfg.initial_orders_per_district = 2;
  TpccWorkload workload(cfg);

  const size_t kTotalTxns = 26000;
  WorkloadBundle bundle = workload.Make(kTotalTxns, 1);
  auto [full_train, test] = bundle.trace.SplitTrainTest(0.25);

  const std::vector<int> ks = {2, 4, 8, 16, 32, 64, 128};
  // Training sizes chosen to land at roughly 1% / 5% / 10% of tuples.
  struct CoverageLevel {
    const char* label;
    size_t txns;
  };
  const CoverageLevel levels[] = {{"schism 1%", 150}, {"schism 5%", 800},
                                  {"schism 10%", 1900}};

  AsciiTable table({"approach", "coverage", "k", "test cost", "cpu s", "detail"});
  std::vector<double> jecb_series;
  std::vector<std::vector<double>> schism_series(3);

  for (int k : ks) {
    RunResult jecb = RunJecb(bundle.db.get(), bundle.procedures, full_train, test, k);
    jecb_series.push_back(jecb.test_cost);
    table.AddRow({"JECB", Pct(Coverage(*bundle.db, full_train)), std::to_string(k),
                  Pct(jecb.test_cost), FormatDouble(jecb.cpu_seconds, 1),
                  jecb.detail});
    for (size_t li = 0; li < 3; ++li) {
      Trace train = full_train.Head(levels[li].txns);
      RunResult schism = RunSchism(bundle.db.get(), train, test, k, levels[li].label);
      schism_series[li].push_back(schism.test_cost);
      table.AddRow({levels[li].label, Pct(Coverage(*bundle.db, train)),
                    std::to_string(k), Pct(schism.test_cost),
                    FormatDouble(schism.cpu_seconds, 1), schism.detail});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  PrintSeries("JECB", ks, jecb_series);
  for (size_t li = 0; li < 3; ++li) {
    PrintSeries(levels[li].label, ks, schism_series[li]);
  }
  FinishObs(argc, argv);
  return 0;
}
