// Component micro-benchmarks (google-benchmark): the hot paths behind every
// experiment — join-path evaluation, whole-solution evaluation over a trace,
// min-cut graph partitioning, decision-tree training/prediction and the SQL
// front end.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_util.h"

#include "graph/partitioner.h"
#include "jecb/jecb.h"
#include "ml/decision_tree.h"
#include "partition/evaluator.h"
#include "sql/analyzer.h"
#include "sql/parser.h"
#include "workloads/tpcc.h"
#include "workloads/tpce.h"

namespace jecb {
namespace {

const WorkloadBundle& TpccBundle() {
  static WorkloadBundle bundle = [] {
    TpccConfig cfg;
    cfg.warehouses = 8;
    return TpccWorkload(cfg).Make(4000, 1);
  }();
  return bundle;
}

void BM_JoinPathEvaluate(benchmark::State& state) {
  const WorkloadBundle& b = TpccBundle();
  const Schema& s = b.db->schema();
  TableId ol = s.FindTable("ORDER_LINE").value();
  // ORDER_LINE -> ORDERS -> CUSTOMER -> DISTRICT -> WAREHOUSE.W_ID
  JoinPath path;
  path.source_table = ol;
  TableId cur = ol;
  const TableId warehouse = s.FindTable("WAREHOUSE").value();
  while (cur != warehouse) {
    bool advanced = false;
    for (FkIdx f = 0; f < s.foreign_keys().size(); ++f) {
      const ForeignKey& fk = s.foreign_keys()[f];
      if (fk.table == cur && fk.ref_table != s.FindTable("STOCK").value() &&
          fk.ref_table != s.FindTable("ITEM").value()) {
        path.hops.push_back(f);
        cur = fk.ref_table;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  path.dest = s.ResolveQualified("WAREHOUSE.W_ID").value();
  CheckOk(path.Validate(s), "BM_JoinPathEvaluate");

  const TableData& data = b.db->table_data(ol);
  RowId r = 0;
  for (auto _ : state) {
    auto v = path.Evaluate(*b.db, TupleId{ol, r});
    benchmark::DoNotOptimize(v);
    r = (r + 1) % static_cast<RowId>(data.num_rows());
  }
}
BENCHMARK(BM_JoinPathEvaluate);

void BM_EvaluateSolutionOverTrace(benchmark::State& state) {
  WorkloadBundle b = TpccWorkload(TpccConfig{.warehouses = 8}).Make(2000, 1);
  auto [train, test] = b.trace.SplitTrainTest(0.3);
  JecbOptions opt;
  opt.num_partitions = 8;
  auto res = Jecb(opt).Partition(b.db.get(), b.procedures, train);
  CheckOk(res.status(), "BM_EvaluateSolutionOverTrace");
  for (auto _ : state) {
    EvalResult ev = Evaluate(*b.db, res.value().solution, test);
    benchmark::DoNotOptimize(ev.distributed_txns);
  }
  state.SetItemsProcessed(state.iterations() * test.size());
}
BENCHMARK(BM_EvaluateSolutionOverTrace);

void BM_GraphPartition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(5);
  GraphBuilder builder(n, 1);
  for (int c = 0; c < 8; ++c) {
    for (int i = 0; i < n / 8; ++i) {
      for (int e = 0; e < 6; ++e) {
        builder.AddEdge(c * (n / 8) + i, c * (n / 8) + rng() % (n / 8), 2);
      }
    }
  }
  Graph g = builder.Build();
  GraphPartitionOptions opt;
  opt.num_parts = 8;
  for (auto _ : state) {
    auto part = PartitionGraph(g, opt);
    benchmark::DoNotOptimize(part.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GraphPartition)->Arg(4096)->Arg(32768);

void BM_DecisionTreeTrain(benchmark::State& state) {
  std::mt19937_64 rng(7);
  std::vector<std::vector<int64_t>> x;
  std::vector<int32_t> y;
  for (int i = 0; i < 20000; ++i) {
    int64_t w = static_cast<int64_t>(rng() % 128);
    x.push_back({w, static_cast<int64_t>(rng() % 1000), static_cast<int64_t>(rng())});
    y.push_back(static_cast<int32_t>(w % 8));
  }
  for (auto _ : state) {
    DecisionTree t = DecisionTree::Train(x, y, 8);
    benchmark::DoNotOptimize(t.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * x.size());
}
BENCHMARK(BM_DecisionTreeTrain);

void BM_DecisionTreePredict(benchmark::State& state) {
  std::mt19937_64 rng(7);
  std::vector<std::vector<int64_t>> x;
  std::vector<int32_t> y;
  for (int i = 0; i < 4000; ++i) {
    int64_t w = static_cast<int64_t>(rng() % 128);
    x.push_back({w, static_cast<int64_t>(rng() % 1000)});
    y.push_back(static_cast<int32_t>(w % 8));
  }
  DecisionTree t = DecisionTree::Train(x, y, 8);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Predict(x[i]));
    i = (i + 1) % x.size();
  }
}
BENCHMARK(BM_DecisionTreePredict);

void BM_ParseAndAnalyzeTpceProcedures(benchmark::State& state) {
  WorkloadBundle b = TpceWorkload(TpceConfig{.customers = 40}).Make(10, 1);
  for (auto _ : state) {
    for (const auto& proc : b.procedures) {
      auto info = sql::AnalyzeProcedure(b.db->schema(), proc);
      benchmark::DoNotOptimize(info.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * b.procedures.size());
}
BENCHMARK(BM_ParseAndAnalyzeTpceProcedures);

void BM_JecbEndToEndTpcc(benchmark::State& state) {
  WorkloadBundle b = TpccWorkload(TpccConfig{.warehouses = 8}).Make(3000, 1);
  auto [train, test] = b.trace.SplitTrainTest(0.3);
  JecbOptions opt;
  opt.num_partitions = 8;
  for (auto _ : state) {
    auto res = Jecb(opt).Partition(b.db.get(), b.procedures, train);
    benchmark::DoNotOptimize(res.ok());
  }
}
BENCHMARK(BM_JecbEndToEndTpcc);

}  // namespace
}  // namespace jecb

// Hand-rolled BENCHMARK_MAIN so the shared --trace_out/--metrics_out flags
// work here too (benchmark's own flag parser would reject them, so strip
// them before Initialize sees the argv).
int main(int argc, char** argv) {
  jecb::bench::InitObs(argc, argv);
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a == "--trace_out" || a == "--metrics_out" || a == "--out_dir") {
      ++i;  // skip the flag's value too
      continue;
    }
    if (a.rfind("--trace_out=", 0) == 0 || a.rfind("--metrics_out=", 0) == 0 ||
        a.rfind("--out_dir=", 0) == 0) {
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  ::benchmark::Initialize(&bench_argc, bench_argv.data());
  if (::benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  jecb::bench::FinishObs(argc, argv);
  return 0;
}
