// Figure 8: per-transaction-class % distributed transactions under JECB's
// TPC-E solution (8 partitions).
//
// Paper shape: Customer-Position, Market-Watch, TL-F2/F4, Trade-Order,
// Trade-Status, TU-F2 ~local; the seven bad classes are group 1
// (Broker-Volume, Market-Feed, TL-F1, TU-F1: inherently non-partitionable)
// and group 2 (TL-F3, Trade-Result, TU-F3: roots incompatible with C_ID).
#include "bench_util.h"
#include "workloads/tpce.h"

using namespace jecb;
using namespace jecb::bench;

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Figure 8: JECB on TPC-E, per-class distributed fraction",
              "bad: BV, MF, TL-F1, TU-F1 (group 1) and TL-F3, TradeResult, "
              "TU-F3 (group 2); the rest ~0");

  TpceConfig cfg;
  cfg.customers = 600;
  WorkloadBundle bundle = TpceWorkload(cfg).Make(16000, 3);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);

  JecbOptions opt;
  opt.num_partitions = 8;
  auto result = Jecb(opt).Partition(bundle.db.get(), bundle.procedures, train);
  CheckOk(result.status(), "fig8");
  EvalResult ev = Evaluate(*bundle.db, result.value().solution, test);

  AsciiTable table({"Transaction class", "distributed"});
  for (uint32_t c = 0; c < test.num_classes(); ++c) {
    table.AddRow({test.class_name(c), Pct(ev.class_cost(c))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("overall: %s (paper: 21%%)\n", Pct(ev.cost()).c_str());
  FinishObs(argc, argv);
  return 0;
}
