// Distributed replay: the same JECB-partitioned TPC-C replay through the
// in-process transport and through the real multi-process socket transport
// (forked shard servers, length-prefixed frames over Unix-domain sockets),
// at 2/4/8 shards. Reports throughput and goodput side by side along with
// the wire accounting (messages, bytes, per-shard RTT percentiles), and
// asserts the ISSUE contract: for a fixed seed the outcome signature —
// commits, failures, aborts, per-shard fault counts — is bit-identical
// between the two backends at every shard count, so the socket runtime is
// a faithful (just slower) realization of the simulated one.
//
// A small 2PC fault plan runs on both backends so goodput is a real number
// rather than an alias of throughput. Emits BENCH_distributed_replay.json
// to --out_dir (default: the build directory); --txns scales the trace and
// --shards N restricts the sweep to a single shard count (CI smoke runs
// `--shards 2 --txns 600`); --with_tcp 1 adds a TCP-loopback row per count.
//
// Observability flags (all off by default, none affect outcomes):
//   --telemetry_period_ms N   poll shard children's span rings + metrics
//                             every N ms during socket replays (shutdown
//                             harvest runs regardless)
//   --telemetry_harvest 0     disable even the shutdown harvest — the
//                             no-telemetry baseline for overhead runs
//   --trace_sample_pct P      sample P% of txn ids for timeline spans
//                             (default 100; the sampled set is a pure hash
//                             of (seed, txn id), so outcomes never move)
//   --trace_out PATH          write the trace; with harvested shard
//                             telemetry this is the merged multi-process
//                             cluster trace (one Perfetto track per pid)
//   --metrics_http_port P     serve live GET /metrics on 127.0.0.1:P
//                             (0 = kernel-assigned) for the whole run
//   --scrape_out PATH         scrape that live endpoint once, right after
//                             the last replay, and save the body (the CI
//                             dist-smoke artifact)
#include <cstdio>

#include "bench_util.h"
#include "dist/metrics_http.h"
#include "dist/replay.h"
#include "workloads/tpcc.h"

using namespace jecb;
using namespace jecb::bench;

namespace {

struct BenchRow {
  int shards = 0;
  ReplayReport report;
};

RuntimeOptions OptionsFor(TransportKind transport, int clients,
                          uint32_t telemetry_period_ms,
                          bool telemetry_harvest, double trace_sample_rate) {
  RuntimeOptions opt;
  opt.transport = transport;
  opt.num_clients = clients;
  opt.local_work_us = 2;
  opt.round_trip_us = 60;
  opt.lock_hold_us = 2;
  // Modest deterministic 2PC faults so goodput < throughput on both
  // backends; zero-duration stalls/timeouts keep wall time honest.
  opt.faults.stall_rate = 0.02;
  opt.faults.stall_us = 50;
  opt.faults.prepare_reject_rate = 0.02;
  opt.faults.shard_down_rate = 0.02;
  opt.faults.max_attempts = 3;
  opt.faults.backoff_base_us = 20;
  opt.faults.backoff_cap_us = 200;
  opt.telemetry_period_ms = telemetry_period_ms;
  opt.telemetry_harvest = telemetry_harvest;
  opt.trace_sample_rate = trace_sample_rate;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Distributed replay: in-process vs multi-process socket backend",
              "identical outcome signatures, real fork/socket/2PC overhead "
              "visible as the tps gap between the two transports");
  const std::string out_dir = OutDir(argc, argv);
  const size_t num_txns = static_cast<size_t>(ArgInt(argc, argv, "--txns", 3000));
  const int clients = static_cast<int>(ArgInt(argc, argv, "--clients", 4));
  const int only_shards = static_cast<int>(ArgInt(argc, argv, "--shards", 0));
  const bool with_tcp = ArgInt(argc, argv, "--with_tcp", 0) != 0;
  const uint32_t telemetry_period_ms =
      static_cast<uint32_t>(ArgInt(argc, argv, "--telemetry_period_ms", 0));
  const bool telemetry_harvest =
      ArgInt(argc, argv, "--telemetry_harvest", 1) != 0;
  const double trace_sample_rate =
      static_cast<double>(ArgInt(argc, argv, "--trace_sample_pct", 100)) / 100.0;
  const int64_t metrics_http_port = ArgInt(argc, argv, "--metrics_http_port", -1);
  const std::string scrape_out = ArgValue(argc, argv, "--scrape_out");

  // Live cluster-wide /metrics for the whole run: the default renderer
  // concatenates this process's registry with whatever shard snapshots the
  // socket replays harvest, so a scrape mid-run sees coordinator + shards.
  dist::MetricsHttpServer metrics_http;
  if (metrics_http_port >= 0 || !scrape_out.empty()) {
    uint16_t want = metrics_http_port > 0
                        ? static_cast<uint16_t>(metrics_http_port)
                        : 0;
    Status s = metrics_http.Start(want);
    if (!s.ok()) {
      std::fprintf(stderr, "FATAL: metrics http: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("live /metrics on 127.0.0.1:%u\n", metrics_http.port());
  }

  TpccConfig cfg;
  cfg.warehouses = 8;
  cfg.districts_per_warehouse = 2;
  cfg.customers_per_district = 6;
  cfg.items = 25;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(num_txns, 42);
  std::printf("trace: %zu txns, %d clients\n\n", bundle.trace.size(), clients);

  std::vector<int> shard_counts;
  for (int k : {2, 4, 8}) {
    if (only_shards == 0 || only_shards == k) shard_counts.push_back(k);
  }
  if (shard_counts.empty()) {
    std::fprintf(stderr, "FATAL: --shards must be one of 2, 4, 8 (or 0 for all)\n");
    return 2;
  }

  std::vector<TransportKind> transports = {TransportKind::kInProcess,
                                           TransportKind::kUnixSocket};
  if (with_tcp) transports.push_back(TransportKind::kTcpSocket);

  AsciiTable table({"shards", "transport", "throughput (txn/s)",
                    "goodput (txn/s)", "dist frac", "wire msgs", "wire MB",
                    "rtt p50/p99 us", "signature"});
  std::vector<std::pair<std::string, BenchRow>> rows;

  for (int k : shard_counts) {
    JecbOptions jopt;
    jopt.num_partitions = k;
    auto res = Jecb(jopt).Partition(bundle.db.get(), bundle.procedures,
                                    bundle.trace);
    CheckOk(res.status(), "jecb");
    const DatabaseSolution& solution = res.value().solution;

    uint64_t reference_signature = 0;
    for (TransportKind transport : transports) {
      const std::string name(TransportKindName(transport));
      BenchRow row;
      row.shards = k;
      row.report = Replay(*bundle.db, solution, bundle.trace,
                          OptionsFor(transport, clients, telemetry_period_ms,
                                     telemetry_harvest, trace_sample_rate),
                          name + "-k" + std::to_string(k));
      row.report.PublishTo(MetricsRegistry::Default());
      const TransportCounters& c = row.report.transport_counters;
      const uint64_t signature = row.report.OutcomeSignature();
      table.AddRow(
          {std::to_string(k), name,
           FormatDouble(row.report.throughput_tps, 0),
           FormatDouble(row.report.goodput_tps, 0),
           Pct(row.report.distributed_fraction()),
           std::to_string(c.messages_sent),
           FormatDouble(static_cast<double>(c.bytes_sent) / (1024.0 * 1024.0), 2),
           FormatDouble(row.report.transport_rtt.p50_us, 0) + "/" +
               FormatDouble(row.report.transport_rtt.p99_us, 0),
           std::to_string(signature)});
      rows.emplace_back(name, row);

      // A shard child that exited abnormally (nonzero code, signaled, or
      // needed SIGKILL) invalidates the whole row even if the numbers look
      // plausible — the reap ladder records the status so we can fail here
      // instead of silently benchmarking a crashed replay.
      if (row.report.abnormal_shard_exits() > 0) {
        for (const ShardExitStatus& e : row.report.shard_exits) {
          if (e.shard >= 0 && !e.clean()) {
            std::fprintf(stderr,
                         "FATAL: shard %d exited abnormally (exit_code=%d "
                         "term_signal=%d forced_term=%d forced_kill=%d) at "
                         "%d shards on %s\n",
                         e.shard, e.exit_code, e.term_signal,
                         e.forced_term ? 1 : 0, e.forced_kill ? 1 : 0, k,
                         name.c_str());
          }
        }
        return 1;
      }

      // Acceptance check: every backend reproduces the in-process outcome
      // bit-for-bit at this shard count — same seed, same decisions, same
      // commits/aborts/fault counts, regardless of what the wire did.
      if (transport == TransportKind::kInProcess) {
        reference_signature = signature;
      } else if (signature != reference_signature) {
        std::fprintf(stderr,
                     "FATAL: %s outcome signature %llx != in-process %llx "
                     "at %d shards\n",
                     name.c_str(), static_cast<unsigned long long>(signature),
                     static_cast<unsigned long long>(reference_signature), k);
        return 1;
      }
    }
    std::printf("k=%d: outcome signature identical across %zu transports\n", k,
                transports.size());
  }
  std::printf("\n%s\n", table.ToString().c_str());

  std::string json = "{\n  \"bench\": \"distributed_replay\",\n  \"clients\": " +
                     std::to_string(clients) + ",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    json += "    {\"transport\": \"" + rows[i].first +
            "\", \"shards\": " + std::to_string(rows[i].second.shards) +
            ",\n     \"report\": " + rows[i].second.report.ToJson() + "}";
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  WriteBenchJson(out_dir, "distributed_replay", json);

  // The scrape goes through the real HTTP path (socket connect, GET,
  // response parse) while the server is still up — the saved body is what a
  // Prometheus poller would have seen at this moment.
  if (!scrape_out.empty()) {
    Result<std::string> body = dist::ScrapeMetricsOnce(metrics_http.port());
    if (!body.ok()) {
      std::fprintf(stderr, "FATAL: /metrics scrape: %s\n",
                   body.status().ToString().c_str());
      return 1;
    }
    std::ofstream scrape(scrape_out);
    scrape << body.value();
    if (!scrape) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", scrape_out.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes)\n", scrape_out.c_str(), body.value().size());
  }

  FinishObs(argc, argv);
  return 0;
}
