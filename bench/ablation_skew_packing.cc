// Extension experiment (paper Conclusion): skew mitigation by partitioning
// into many more micro-partitions than nodes and heat-aware bin packing.
//
// Workload: TPC-C with Zipf-skewed home-warehouse selection ("hot"
// warehouses). Compared at 8 nodes:
//   direct      — JECB solution with k = 8 partitions;
//   micro+pack  — JECB solution with k = 64 micro-partitions, packed onto 8
//                 nodes by measured heat (LPT).
// Expected shape: equal distributed fractions (packing never splits a
// micro-partition) but much lower load skew for micro+pack as theta grows.
#include "bench_util.h"
#include "partition/bin_packing.h"
#include "workloads/tpcc.h"

using namespace jecb;
using namespace jecb::bench;

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Ablation: skew-aware bin packing (TPC-C, 8 nodes)",
              "equal distributed cost; micro-partitioning + heat packing cuts "
              "node load skew under Zipf warehouse popularity");

  AsciiTable table({"zipf theta", "approach", "distributed", "node load skew",
                    "hottest/avg"});
  for (double theta : {0.0, 0.6, 1.0, 1.4}) {
    TpccConfig cfg;
    cfg.warehouses = 64;
    cfg.districts_per_warehouse = 2;
    cfg.customers_per_district = 8;
    cfg.items = 30;
    cfg.warehouse_zipf_theta = theta;
    WorkloadBundle bundle = TpccWorkload(cfg).Make(16000, 31);
    auto [train, test] = bundle.trace.SplitTrainTest(0.3);

    auto run = [&](int32_t k) {
      JecbOptions opt;
      opt.num_partitions = k;
      auto res = Jecb(opt).Partition(bundle.db.get(), bundle.procedures, train);
      CheckOk(res.status(), "skew bench");
      return std::move(res).value();
    };

    // Direct 8-way placement.
    JecbResult direct = run(8);
    EvalResult direct_ev = Evaluate(*bundle.db, direct.solution, test);

    // 64 micro-partitions, packed by heat measured on the training trace.
    JecbResult micro = run(64);
    DatabaseSolution packed =
        PackSolution(*bundle.db, micro.solution, train, 8, nullptr);
    EvalResult packed_ev = Evaluate(*bundle.db, packed, test);

    auto hot_ratio = [](const EvalResult& ev) {
      uint64_t max_load = 0;
      uint64_t total = 0;
      for (uint64_t l : ev.partition_load) {
        max_load = std::max(max_load, l);
        total += l;
      }
      double avg = static_cast<double>(total) /
                   static_cast<double>(ev.partition_load.size());
      return avg == 0 ? 0.0 : static_cast<double>(max_load) / avg;
    };

    table.AddRow({FormatDouble(theta, 1), "direct k=8", Pct(direct_ev.cost()),
                  FormatDouble(direct_ev.LoadSkew(), 3),
                  FormatDouble(hot_ratio(direct_ev), 2)});
    table.AddRow({FormatDouble(theta, 1), "64 micro + pack", Pct(packed_ev.cost()),
                  FormatDouble(packed_ev.LoadSkew(), 3),
                  FormatDouble(hot_ratio(packed_ev), 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  FinishObs(argc, argv);
  return 0;
}
