// Columnar-pipeline speed: end-to-end Jecb::Partition plus standalone
// Evaluate(), legacy row-oriented scan vs. the FlatTrace + shared-resolver
// path, at 1/2/4/8 worker threads on TPC-C. Both modes must produce the
// same solution bit for bit — the bench asserts identical table solutions,
// train cost, combiner counters, EvalResults, and the replay
// OutcomeSignature at every thread count, and exits non-zero on any
// divergence. Measurements land in BENCH_partition_speed.json.
//
// Mode toggle: --mode=both|legacy|columnar (or env JECB_PARTITION_MODE);
// single modes time one path only and skip the cross-mode assertions.
// Speedups are hardware-dependent; the JSON records hardware_concurrency.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

#include "bench_util.h"
#include "dist/replay.h"
#include "trace/flat_trace.h"
#include "workloads/tpcc.h"

using namespace jecb;
using namespace jecb::bench;

namespace {

constexpr int kEvalIters = 5;

double WallSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// One mode's measurements and identity fingerprint at one thread count.
struct ModeRun {
  double partition_seconds = 0.0;
  double evaluate_seconds = 0.0;  // per Evaluate() pass
  std::string tables;
  double train_cost = 0.0;
  uint64_t evaluated_combinations = 0;
  EvalResult eval;
  uint64_t outcome_signature = 0;
};

bool EvalEqual(const EvalResult& a, const EvalResult& b) {
  return a.total_txns == b.total_txns && a.distributed_txns == b.distributed_txns &&
         a.partitions_touched == b.partitions_touched &&
         a.class_total == b.class_total &&
         a.class_distributed == b.class_distributed &&
         a.partition_load == b.partition_load;
}

ModeRun RunMode(WorkloadBundle* bundle, const FlatTrace& flat, bool columnar,
                int threads) {
  JecbOptions opt;
  opt.num_partitions = 8;
  opt.num_threads = threads;
  opt.columnar = columnar;

  ModeRun run;
  Result<JecbResult> result = Status::Internal("not run");
  run.partition_seconds = WallSeconds([&] {
    result =
        Jecb(opt).Partition(bundle->db.get(), bundle->procedures, bundle->trace);
  });
  CheckOk(result.status(), "partition_speed");
  run.tables = result.value().solution.Describe(bundle->db->schema());
  run.train_cost = result.value().combiner_report.best_train_cost;
  run.evaluated_combinations = result.value().combiner_report.evaluated_combinations;

  ThreadPool pool(threads);
  ThreadPool* eval_pool = threads > 1 ? &pool : nullptr;
  const DatabaseSolution& solution = result.value().solution;
  run.evaluate_seconds = WallSeconds([&] {
                           for (int i = 0; i < kEvalIters; ++i) {
                             run.eval = columnar
                                            ? Evaluate(*bundle->db, solution, flat,
                                                       eval_pool)
                                            : Evaluate(*bundle->db, solution,
                                                       bundle->trace, eval_pool);
                           }
                         }) /
                         kEvalIters;

  // Replay outcome fingerprint: thread-count and layout invariant.
  RuntimeOptions ropt;
  ropt.num_clients = 4;
  ropt.local_work_us = 0;
  ropt.round_trip_us = 0;
  run.outcome_signature =
      Replay(*bundle->db, solution, bundle->trace, ropt, "partition_speed")
          .OutcomeSignature();
  return run;
}

struct BenchRow {
  int threads = 0;
  ModeRun legacy;
  ModeRun columnar;
};

std::string ToJson(const std::vector<BenchRow>& rows, size_t txns, bool both,
                   double flatten_seconds) {
  std::string out = "{\n";
  out += "  \"bench\": \"partition_speed\",\n";
  out += "  \"workload\": \"TPC-C\",\n";
  out += "  \"trace_txns\": " + std::to_string(txns) + ",\n";
  out += "  \"hardware_concurrency\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  out += "  \"flatten_seconds\": " + FormatDouble(flatten_seconds, 6) + ",\n";
  double max_partition_speedup = 0.0;
  double max_evaluate_speedup = 0.0;
  out += "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out += "    {\"threads\": " + std::to_string(r.threads);
    if (r.legacy.partition_seconds > 0.0) {
      out += ", \"legacy_partition_seconds\": " +
             FormatDouble(r.legacy.partition_seconds, 6) +
             ", \"legacy_evaluate_seconds\": " +
             FormatDouble(r.legacy.evaluate_seconds, 6);
    }
    if (r.columnar.partition_seconds > 0.0) {
      out += ", \"columnar_partition_seconds\": " +
             FormatDouble(r.columnar.partition_seconds, 6) +
             ", \"columnar_evaluate_seconds\": " +
             FormatDouble(r.columnar.evaluate_seconds, 6);
    }
    if (both) {
      const double ps = r.legacy.partition_seconds / r.columnar.partition_seconds;
      const double es = r.legacy.evaluate_seconds / r.columnar.evaluate_seconds;
      max_partition_speedup = std::max(max_partition_speedup, ps);
      max_evaluate_speedup = std::max(max_evaluate_speedup, es);
      out += ", \"partition_speedup\": " + FormatDouble(ps, 3) +
             ", \"evaluate_speedup\": " + FormatDouble(es, 3) +
             ", \"identical\": true";
    }
    out += "}";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]";
  if (both) {
    out += ",\n  \"max_partition_speedup\": " +
           FormatDouble(max_partition_speedup, 3) +
           ",\n  \"max_evaluate_speedup\": " + FormatDouble(max_evaluate_speedup, 3);
  }
  out += "\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  InitObs(argc, argv);
  const std::string out_dir = OutDir(argc, argv);
  const size_t txns = static_cast<size_t>(ArgInt(argc, argv, "--txns", 20000));

  std::string mode = ArgValue(argc, argv, "--mode", "");
  if (mode.empty()) {
    const char* env = std::getenv("JECB_PARTITION_MODE");
    mode = env != nullptr ? env : "both";
  }
  const bool run_legacy = mode == "both" || mode == "legacy";
  const bool run_columnar = mode == "both" || mode == "columnar";
  if (!run_legacy && !run_columnar) {
    std::fprintf(stderr, "unknown --mode %s (both|legacy|columnar)\n", mode.c_str());
    return 2;
  }

  PrintHeader("Columnar partitioning speed: FlatTrace + shared join-path resolver",
              "the hot loop scans contiguous access arrays and resolves each "
              "distinct tuple once per join path; the legacy row-oriented scan "
              "is kept as the baseline and must agree bit for bit");
  std::printf("hardware_concurrency: %u, txns: %zu, mode: %s\n\n",
              std::thread::hardware_concurrency(), txns, mode.c_str());

  TpccConfig cfg;
  cfg.warehouses = 8;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 10;
  cfg.items = 50;
  cfg.initial_orders_per_district = 3;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(txns, 5);

  FlatTrace flat;
  const double flatten_seconds =
      WallSeconds([&] { flat = FlatTrace::FromTrace(bundle.trace); });

  AsciiTable table({"threads", "legacy part (s)", "columnar part (s)", "speedup",
                    "legacy eval (s)", "columnar eval (s)", "speedup"});
  std::vector<BenchRow> rows;
  for (int threads : {1, 2, 4, 8}) {
    BenchRow row;
    row.threads = threads;
    if (run_legacy) row.legacy = RunMode(&bundle, flat, /*columnar=*/false, threads);
    if (run_columnar) {
      row.columnar = RunMode(&bundle, flat, /*columnar=*/true, threads);
    }

    if (run_legacy && run_columnar) {
      const ModeRun& l = row.legacy;
      const ModeRun& c = row.columnar;
      if (l.tables != c.tables || l.train_cost != c.train_cost ||
          l.evaluated_combinations != c.evaluated_combinations ||
          !EvalEqual(l.eval, c.eval) ||
          l.outcome_signature != c.outcome_signature) {
        std::fprintf(stderr,
                     "FATAL: columnar diverged from legacy at %d threads\n",
                     threads);
        return 1;
      }
    }

    auto fmt = [](double s) { return s > 0.0 ? FormatDouble(s, 3) : std::string("-"); };
    auto ratio = [&](double l, double c) {
      return (l > 0.0 && c > 0.0) ? FormatDouble(l / c, 2) + "x" : std::string("-");
    };
    table.AddRow({std::to_string(threads), fmt(row.legacy.partition_seconds),
                  fmt(row.columnar.partition_seconds),
                  ratio(row.legacy.partition_seconds, row.columnar.partition_seconds),
                  fmt(row.legacy.evaluate_seconds), fmt(row.columnar.evaluate_seconds),
                  ratio(row.legacy.evaluate_seconds, row.columnar.evaluate_seconds)});
    rows.push_back(std::move(row));
  }
  if (run_legacy && run_columnar) {
    std::printf("solutions, EvalResults, and replay outcome signatures identical "
                "across modes and thread counts\n");
  }
  std::printf("flatten: %s s (once per pipeline)\n%s\n",
              FormatDouble(flatten_seconds, 4).c_str(), table.ToString().c_str());

  WriteBenchJson(out_dir, "partition_speed",
                 ToJson(rows, txns, run_legacy && run_columnar, flatten_seconds));
  FinishObs(argc, argv);
  return 0;
}
