// Search hot-loop speed on end-to-end TPC-C Jecb::Partition plus standalone
// Evaluate(), across the evaluation variants {full, delta} x {scalar, SIMD}
// at 1/2/4/8 worker threads (the default --mode=matrix), and the older
// legacy-row vs columnar comparison (--mode=both|legacy|columnar). Every
// variant must produce the same solution bit for bit — the bench asserts
// identical table solutions, train cost, combiner counters, EvalResults,
// and the replay OutcomeSignature across all variants and thread counts,
// and exits non-zero on any divergence. Measurements land in
// BENCH_partition_speed.json; tools/bench_compare.py diffs that against the
// committed baseline in CI and fails the build on regressions.
//
// --quick shrinks the trace for CI smoke runs; JECB_PARTITION_MODE is the
// env equivalent of --mode. Speedups are hardware-dependent; the JSON
// records hardware_concurrency.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

#include "bench_util.h"
#include "dist/replay.h"
#include "partition/partition_scan.h"
#include "trace/flat_trace.h"
#include "workloads/tpcc.h"

using namespace jecb;
using namespace jecb::bench;

namespace {

int g_eval_iters = 5;

double WallSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// One variant's measurements and identity fingerprint at one thread count.
struct ModeRun {
  double partition_seconds = 0.0;
  double evaluate_seconds = 0.0;  // per Evaluate() pass
  std::string tables;
  double train_cost = 0.0;
  uint64_t evaluated_combinations = 0;
  EvalResult eval;
  uint64_t outcome_signature = 0;
};

bool EvalEqual(const EvalResult& a, const EvalResult& b) {
  return a.total_txns == b.total_txns && a.distributed_txns == b.distributed_txns &&
         a.partitions_touched == b.partitions_touched &&
         a.class_total == b.class_total &&
         a.class_distributed == b.class_distributed &&
         a.partition_load == b.partition_load;
}

bool RunsIdentical(const ModeRun& a, const ModeRun& b) {
  return a.tables == b.tables && a.train_cost == b.train_cost &&
         a.evaluated_combinations == b.evaluated_combinations &&
         EvalEqual(a.eval, b.eval) && a.outcome_signature == b.outcome_signature;
}

ModeRun RunConfig(WorkloadBundle* bundle, const FlatTrace& flat, int threads,
                  const JecbOptions& base_opt, ScanKernel eval_kernel,
                  bool row_evaluate) {
  JecbOptions opt = base_opt;
  opt.num_partitions = 8;
  opt.num_threads = threads;

  ModeRun run;
  Result<JecbResult> result = Status::Internal("not run");
  run.partition_seconds = WallSeconds([&] {
    result =
        Jecb(opt).Partition(bundle->db.get(), bundle->procedures, bundle->trace);
  });
  CheckOk(result.status(), "partition_speed");
  run.tables = result.value().solution.Describe(bundle->db->schema());
  run.train_cost = result.value().combiner_report.best_train_cost;
  run.evaluated_combinations = result.value().combiner_report.evaluated_combinations;

  ThreadPool pool(threads);
  ThreadPool* eval_pool = threads > 1 ? &pool : nullptr;
  const DatabaseSolution& solution = result.value().solution;
  run.evaluate_seconds = WallSeconds([&] {
                           for (int i = 0; i < g_eval_iters; ++i) {
                             run.eval = row_evaluate
                                            ? Evaluate(*bundle->db, solution,
                                                       bundle->trace, eval_pool)
                                            : Evaluate(*bundle->db, solution, flat,
                                                       eval_pool, eval_kernel);
                           }
                         }) /
                         g_eval_iters;

  // Replay outcome fingerprint: thread-count, layout and kernel invariant.
  RuntimeOptions ropt;
  ropt.num_clients = 4;
  ropt.local_work_us = 0;
  ropt.round_trip_us = 0;
  run.outcome_signature =
      Replay(*bundle->db, solution, bundle->trace, ropt, "partition_speed")
          .OutcomeSignature();
  return run;
}

ModeRun RunMode(WorkloadBundle* bundle, const FlatTrace& flat, bool columnar,
                int threads) {
  JecbOptions opt;
  opt.columnar = columnar;
  // The legacy comparison isolates the row-vs-columnar layout change: both
  // sides score combinations with full evaluation on the scalar kernel.
  opt.delta = false;
  opt.simd = false;
  return RunConfig(bundle, flat, threads, opt, ScanKernel::kScalar,
                   /*row_evaluate=*/!columnar);
}

ModeRun RunVariant(WorkloadBundle* bundle, const FlatTrace& flat, int threads,
                   bool delta, bool simd) {
  JecbOptions opt;
  opt.columnar = true;
  opt.delta = delta;
  opt.simd = simd;
  return RunConfig(bundle, flat, threads, opt,
                   simd ? ScanKernel::kAuto : ScanKernel::kScalar,
                   /*row_evaluate=*/false);
}

// ---------------------------------------------------------------------------
// matrix mode: {full, delta} x {scalar, simd}
// ---------------------------------------------------------------------------

struct MatrixRow {
  int threads = 0;
  ModeRun full_scalar, full_simd, delta_scalar, delta_simd;
};

std::string MatrixJson(const std::vector<MatrixRow>& rows, size_t txns,
                       double flatten_seconds) {
  std::string out = "{\n";
  out += "  \"bench\": \"partition_speed\",\n";
  out += "  \"workload\": \"TPC-C\",\n";
  out += "  \"mode\": \"matrix\",\n";
  out += "  \"trace_txns\": " + std::to_string(txns) + ",\n";
  out += "  \"hardware_concurrency\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  out += "  \"scan_kernel\": \"" + std::string(ScanKernelName(BestScanKernel())) +
         "\",\n";
  out += "  \"flatten_seconds\": " + FormatDouble(flatten_seconds, 6) + ",\n";
  double max_partition_speedup = 0.0;
  double max_evaluate_speedup = 0.0;
  out += "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const MatrixRow& r = rows[i];
    const double ps =
        r.full_scalar.partition_seconds / r.delta_simd.partition_seconds;
    const double es =
        r.full_scalar.evaluate_seconds / r.delta_simd.evaluate_seconds;
    max_partition_speedup = std::max(max_partition_speedup, ps);
    max_evaluate_speedup = std::max(max_evaluate_speedup, es);
    out += "    {\"threads\": " + std::to_string(r.threads) +
           ", \"full_scalar_partition_seconds\": " +
           FormatDouble(r.full_scalar.partition_seconds, 6) +
           ", \"full_simd_partition_seconds\": " +
           FormatDouble(r.full_simd.partition_seconds, 6) +
           ", \"delta_scalar_partition_seconds\": " +
           FormatDouble(r.delta_scalar.partition_seconds, 6) +
           ", \"delta_simd_partition_seconds\": " +
           FormatDouble(r.delta_simd.partition_seconds, 6) +
           ", \"full_scalar_evaluate_seconds\": " +
           FormatDouble(r.full_scalar.evaluate_seconds, 6) +
           ", \"delta_simd_evaluate_seconds\": " +
           FormatDouble(r.delta_simd.evaluate_seconds, 6) +
           ", \"partition_speedup\": " + FormatDouble(ps, 3) +
           ", \"evaluate_speedup\": " + FormatDouble(es, 3) +
           ", \"identical\": true}";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"max_partition_speedup\": " + FormatDouble(max_partition_speedup, 3) +
         ",\n";
  out += "  \"max_evaluate_speedup\": " + FormatDouble(max_evaluate_speedup, 3) +
         ",\n";
  out += "  \"identical\": true\n";
  out += "}\n";
  return out;
}

int RunMatrix(WorkloadBundle* bundle, const FlatTrace& flat, size_t txns,
              double flatten_seconds, const std::string& out_dir) {
  AsciiTable table({"threads", "full+scalar (s)", "full+simd (s)",
                    "delta+scalar (s)", "delta+simd (s)", "speedup"});
  std::vector<MatrixRow> rows;
  for (int threads : {1, 2, 4, 8}) {
    MatrixRow row;
    row.threads = threads;
    row.full_scalar = RunVariant(bundle, flat, threads, false, false);
    row.full_simd = RunVariant(bundle, flat, threads, false, true);
    row.delta_scalar = RunVariant(bundle, flat, threads, true, false);
    row.delta_simd = RunVariant(bundle, flat, threads, true, true);

    // The identity contract: every variant at every thread count agrees with
    // full+scalar at this thread count, and full+scalar agrees across thread
    // counts with the first row.
    const ModeRun* variants[] = {&row.full_simd, &row.delta_scalar,
                                 &row.delta_simd};
    const char* names[] = {"full+simd", "delta+scalar", "delta+simd"};
    for (size_t v = 0; v < std::size(variants); ++v) {
      if (!RunsIdentical(row.full_scalar, *variants[v])) {
        std::fprintf(stderr, "FATAL: %s diverged from full+scalar at %d threads\n",
                     names[v], threads);
        return 1;
      }
    }
    if (!rows.empty() && !RunsIdentical(rows.front().full_scalar, row.full_scalar)) {
      std::fprintf(stderr,
                   "FATAL: full+scalar at %d threads diverged from 1 thread\n",
                   threads);
      return 1;
    }

    table.AddRow(
        {std::to_string(threads), FormatDouble(row.full_scalar.partition_seconds, 3),
         FormatDouble(row.full_simd.partition_seconds, 3),
         FormatDouble(row.delta_scalar.partition_seconds, 3),
         FormatDouble(row.delta_simd.partition_seconds, 3),
         FormatDouble(row.full_scalar.partition_seconds /
                          row.delta_simd.partition_seconds,
                      2) +
             "x"});
    rows.push_back(std::move(row));
  }
  std::printf("solutions, EvalResults, combiner counters, and replay outcome "
              "signatures identical across all variants and thread counts\n");
  std::printf("flatten: %s s (once per pipeline)\n%s\n",
              FormatDouble(flatten_seconds, 4).c_str(), table.ToString().c_str());
  WriteBenchJson(out_dir, "partition_speed",
                 MatrixJson(rows, txns, flatten_seconds));
  return 0;
}

// ---------------------------------------------------------------------------
// legacy comparison mode: row-oriented vs columnar
// ---------------------------------------------------------------------------

struct BenchRow {
  int threads = 0;
  ModeRun legacy;
  ModeRun columnar;
};

std::string ToJson(const std::vector<BenchRow>& rows, size_t txns, bool both,
                   double flatten_seconds) {
  std::string out = "{\n";
  out += "  \"bench\": \"partition_speed\",\n";
  out += "  \"workload\": \"TPC-C\",\n";
  out += "  \"mode\": \"legacy_columnar\",\n";
  out += "  \"trace_txns\": " + std::to_string(txns) + ",\n";
  out += "  \"hardware_concurrency\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  out += "  \"flatten_seconds\": " + FormatDouble(flatten_seconds, 6) + ",\n";
  double max_partition_speedup = 0.0;
  double max_evaluate_speedup = 0.0;
  out += "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out += "    {\"threads\": " + std::to_string(r.threads);
    if (r.legacy.partition_seconds > 0.0) {
      out += ", \"legacy_partition_seconds\": " +
             FormatDouble(r.legacy.partition_seconds, 6) +
             ", \"legacy_evaluate_seconds\": " +
             FormatDouble(r.legacy.evaluate_seconds, 6);
    }
    if (r.columnar.partition_seconds > 0.0) {
      out += ", \"columnar_partition_seconds\": " +
             FormatDouble(r.columnar.partition_seconds, 6) +
             ", \"columnar_evaluate_seconds\": " +
             FormatDouble(r.columnar.evaluate_seconds, 6);
    }
    if (both) {
      const double ps = r.legacy.partition_seconds / r.columnar.partition_seconds;
      const double es = r.legacy.evaluate_seconds / r.columnar.evaluate_seconds;
      max_partition_speedup = std::max(max_partition_speedup, ps);
      max_evaluate_speedup = std::max(max_evaluate_speedup, es);
      out += ", \"partition_speedup\": " + FormatDouble(ps, 3) +
             ", \"evaluate_speedup\": " + FormatDouble(es, 3) +
             ", \"identical\": true";
    }
    out += "}";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]";
  if (both) {
    out += ",\n  \"max_partition_speedup\": " +
           FormatDouble(max_partition_speedup, 3) +
           ",\n  \"max_evaluate_speedup\": " + FormatDouble(max_evaluate_speedup, 3);
  }
  out += "\n}\n";
  return out;
}

int RunLegacyComparison(WorkloadBundle* bundle, const FlatTrace& flat,
                        bool run_legacy, bool run_columnar, size_t txns,
                        double flatten_seconds, const std::string& out_dir) {
  AsciiTable table({"threads", "legacy part (s)", "columnar part (s)", "speedup",
                    "legacy eval (s)", "columnar eval (s)", "speedup"});
  std::vector<BenchRow> rows;
  for (int threads : {1, 2, 4, 8}) {
    BenchRow row;
    row.threads = threads;
    if (run_legacy) row.legacy = RunMode(bundle, flat, /*columnar=*/false, threads);
    if (run_columnar) {
      row.columnar = RunMode(bundle, flat, /*columnar=*/true, threads);
    }

    if (run_legacy && run_columnar &&
        !RunsIdentical(row.legacy, row.columnar)) {
      std::fprintf(stderr, "FATAL: columnar diverged from legacy at %d threads\n",
                   threads);
      return 1;
    }

    auto fmt = [](double s) { return s > 0.0 ? FormatDouble(s, 3) : std::string("-"); };
    auto ratio = [&](double l, double c) {
      return (l > 0.0 && c > 0.0) ? FormatDouble(l / c, 2) + "x" : std::string("-");
    };
    table.AddRow({std::to_string(threads), fmt(row.legacy.partition_seconds),
                  fmt(row.columnar.partition_seconds),
                  ratio(row.legacy.partition_seconds, row.columnar.partition_seconds),
                  fmt(row.legacy.evaluate_seconds), fmt(row.columnar.evaluate_seconds),
                  ratio(row.legacy.evaluate_seconds, row.columnar.evaluate_seconds)});
    rows.push_back(std::move(row));
  }
  if (run_legacy && run_columnar) {
    std::printf("solutions, EvalResults, and replay outcome signatures identical "
                "across modes and thread counts\n");
  }
  std::printf("flatten: %s s (once per pipeline)\n%s\n",
              FormatDouble(flatten_seconds, 4).c_str(), table.ToString().c_str());

  WriteBenchJson(out_dir, "partition_speed",
                 ToJson(rows, txns, run_legacy && run_columnar, flatten_seconds));
  return 0;
}

bool HasFlag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  InitObs(argc, argv);
  const std::string out_dir = OutDir(argc, argv);
  const bool quick = HasFlag(argc, argv, "--quick");
  const size_t txns =
      static_cast<size_t>(ArgInt(argc, argv, "--txns", quick ? 6000 : 20000));
  if (quick) g_eval_iters = 3;

  std::string mode = ArgValue(argc, argv, "--mode", "");
  if (mode.empty()) {
    const char* env = std::getenv("JECB_PARTITION_MODE");
    mode = env != nullptr ? env : "matrix";
  }
  const bool run_matrix = mode == "matrix";
  const bool run_legacy = mode == "both" || mode == "legacy";
  const bool run_columnar = mode == "both" || mode == "columnar";
  if (!run_matrix && !run_legacy && !run_columnar) {
    std::fprintf(stderr, "unknown --mode %s (matrix|both|legacy|columnar)\n",
                 mode.c_str());
    return 2;
  }

  PrintHeader("Search hot-loop speed: delta evaluation + SIMD partition scan",
              "candidate scoring rescans only affected transactions on a "
              "vectorized kernel; every variant must agree with the full "
              "scalar evaluation bit for bit");
  std::printf("hardware_concurrency: %u, txns: %zu, mode: %s, best kernel: %s%s\n\n",
              std::thread::hardware_concurrency(), txns, mode.c_str(),
              std::string(ScanKernelName(BestScanKernel())).c_str(),
              quick ? " (quick)" : "");

  TpccConfig cfg;
  cfg.warehouses = 8;
  cfg.districts_per_warehouse = 4;
  cfg.customers_per_district = 10;
  cfg.items = 50;
  cfg.initial_orders_per_district = 3;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(txns, 5);

  FlatTrace flat;
  const double flatten_seconds =
      WallSeconds([&] { flat = FlatTrace::FromTrace(bundle.trace); });

  int rc;
  if (run_matrix) {
    rc = RunMatrix(&bundle, flat, txns, flatten_seconds, out_dir);
  } else {
    rc = RunLegacyComparison(&bundle, flat, run_legacy, run_columnar, txns,
                             flatten_seconds, out_dir);
  }
  if (rc != 0) return rc;
  FinishObs(argc, argv);
  return 0;
}
