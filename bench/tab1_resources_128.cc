// Table 1: resource consumption (RAM, CPU) for partitioning the TPC-C
// 128-warehouse database, Schism at 1%/5%/10% training coverage vs JECB.
//
// Paper shape: Schism's RAM and CPU grow steeply with coverage (692 MB /
// 232 s at 1% up to 9.8 GB / 1870 s at 10% on the paper's testbed); JECB is
// flat and tiny (30 MB / 35 s). Absolute numbers differ on this substrate;
// the asymmetry is the result.
#include "bench_util.h"
#include "workloads/tpcc.h"

using namespace jecb;
using namespace jecb::bench;

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Table 1: resource consumption, TPC-C 128 warehouses",
              "Schism RAM/CPU grow steeply with coverage; JECB flat and small");

  TpccConfig cfg;
  cfg.warehouses = 128;
  cfg.districts_per_warehouse = 3;
  cfg.customers_per_district = 8;
  cfg.items = 40;
  cfg.initial_orders_per_district = 2;
  WorkloadBundle bundle = TpccWorkload(cfg).Make(26000, 1);
  auto [full_train, test] = bundle.trace.SplitTrainTest(0.25);

  const int32_t k = 32;
  AsciiTable table({"approach", "coverage", "RAM delta (MB)", "CPU (seconds)",
                    "test cost"});
  struct Level {
    const char* label;
    size_t txns;
  };
  for (Level level : std::initializer_list<Level>{
           {"schism 1%", 150}, {"schism 5%", 800}, {"schism 10%", 1900},
           {"schism 40%", 8000}, {"schism 75%", 19500}}) {
    Trace train = full_train.Head(level.txns);
    RunResult r = RunSchism(bundle.db.get(), train, test, k, level.label);
    table.AddRow({level.label, Pct(Coverage(*bundle.db, train)),
                  std::to_string(r.rss_delta_mb), FormatDouble(r.cpu_seconds, 2),
                  Pct(r.test_cost)});
  }
  RunResult jecb = RunJecb(bundle.db.get(), bundle.procedures, full_train, test, k);
  table.AddRow({"JECB", Pct(Coverage(*bundle.db, full_train)),
                std::to_string(jecb.rss_delta_mb), FormatDouble(jecb.cpu_seconds, 2),
                Pct(jecb.test_cost)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("note: RAM is the process RSS delta across the partitioner run;\n"
              "JECB additionally received the FULL trace yet stays flat.\n");
  FinishObs(argc, argv);
  return 0;
}
