// Figure 9: per-transaction-class % distributed transactions under the
// Horticulture TPC-E solution (paper Table 4), 8 partitions.
//
// Paper shape: Horticulture wins only on Broker-Volume (it replicates
// BROKER and TRADE_REQUEST, which in turn makes Trade-Order distributed)
// and performs badly on Customer-Position, Market-Watch, TL-F2 and TU-F2,
// which JECB makes completely local.
#include "bench_util.h"
#include "workloads/tpce.h"

using namespace jecb;
using namespace jecb::bench;

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Figure 9: Horticulture (paper solution) on TPC-E, per class",
              "good on Broker-Volume; bad on Customer-Position, Market-Watch, "
              "TL-F2, TU-F2 and Trade-Order");

  TpceConfig cfg;
  cfg.customers = 600;
  WorkloadBundle bundle = TpceWorkload(cfg).Make(16000, 3);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);
  // Phase-1 classification for consistent read-only replication semantics.
  auto classes = ClassifyTables(bundle.db->schema(), train);
  ApplyClassification(&bundle.db->mutable_schema(), classes);

  DatabaseSolution hc = HorticulturePaperTpceSolution(*bundle.db, 8);
  EvalResult ev = Evaluate(*bundle.db, hc, test);

  AsciiTable table({"Transaction class", "distributed"});
  for (uint32_t c = 0; c < test.num_classes(); ++c) {
    table.AddRow({test.class_name(c), Pct(ev.class_cost(c))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("overall: %s\n", Pct(ev.cost()).c_str());
  FinishObs(argc, argv);
  return 0;
}
