// Parallel-pipeline scaling (paper Sec. 7.5 narrative): JECB's advantage
// over LNS-style search is that it finds solutions in seconds — this bench
// measures how far the thread pool pushes that, timing the full
// Jecb::Partition pipeline and a standalone Evaluate() pass at 1/2/4/8
// worker threads on TPC-C and TPC-E traces. Besides wall clock it asserts
// the determinism contract (every thread count must reproduce the
// single-threaded solution and cost exactly) and writes the measurements to
// BENCH_parallel_search.json.
//
// Speedup is hardware-dependent: on a single-core container every row
// reports ~1x (the pool adds threads the OS serializes); the JSON records
// hardware_concurrency so readers can interpret the numbers.
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

#include "bench_util.h"
#include "workloads/tpcc.h"
#include "workloads/tpce.h"

using namespace jecb;
using namespace jecb::bench;

namespace {

double WallSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct ScalingRow {
  int threads = 0;
  double partition_seconds = 0.0;
  double evaluate_seconds = 0.0;
  double partition_speedup = 0.0;
  double evaluate_speedup = 0.0;
};

struct WorkloadScaling {
  std::string workload;
  size_t trace_txns = 0;
  double train_cost = 0.0;
  std::vector<ScalingRow> rows;
};

WorkloadScaling RunScaling(const std::string& name, WorkloadBundle* bundle,
                           const std::vector<int>& thread_counts) {
  WorkloadScaling out;
  out.workload = name;
  out.trace_txns = bundle->trace.size();

  std::string baseline_tables;
  double baseline_cost = 0.0;
  uint64_t baseline_evaluated = 0;
  EvalResult baseline_eval;

  AsciiTable table({"threads", "partition (s)", "speedup", "evaluate (s)", "speedup"});
  for (int threads : thread_counts) {
    JecbOptions opt;
    opt.num_partitions = 8;
    opt.num_threads = threads;

    ScalingRow row;
    row.threads = threads;
    Result<JecbResult> result = Status::Internal("not run");
    row.partition_seconds = WallSeconds([&] {
      result = Jecb(opt).Partition(bundle->db.get(), bundle->procedures,
                                   bundle->trace);
    });
    CheckOk(result.status(), ("parallel_search " + name).c_str());

    // Standalone chunked evaluation of the found solution over the trace.
    ThreadPool pool(threads);
    ThreadPool* eval_pool = threads > 1 ? &pool : nullptr;
    EvalResult ev;
    row.evaluate_seconds = WallSeconds([&] {
      ev = Evaluate(*bundle->db, result.value().solution, bundle->trace, eval_pool);
    });

    // Determinism contract vs. the 1-thread baseline.
    const std::string tables = result.value().solution.Describe(bundle->db->schema());
    if (threads == thread_counts.front()) {
      baseline_tables = tables;
      baseline_cost = result.value().combiner_report.best_train_cost;
      baseline_evaluated = result.value().combiner_report.evaluated_combinations;
      baseline_eval = ev;
      out.train_cost = baseline_cost;
    } else if (tables != baseline_tables ||
               result.value().combiner_report.best_train_cost != baseline_cost ||
               result.value().combiner_report.evaluated_combinations !=
                   baseline_evaluated ||
               ev.distributed_txns != baseline_eval.distributed_txns ||
               ev.partition_load != baseline_eval.partition_load) {
      std::fprintf(stderr,
                   "FATAL: %s at %d threads diverged from the single-threaded "
                   "solution\n",
                   name.c_str(), threads);
      std::exit(1);
    }

    row.partition_speedup = out.rows.empty()
                                ? 1.0
                                : out.rows.front().partition_seconds /
                                      row.partition_seconds;
    row.evaluate_speedup = out.rows.empty()
                               ? 1.0
                               : out.rows.front().evaluate_seconds /
                                     row.evaluate_seconds;
    table.AddRow({std::to_string(threads),
                  FormatDouble(row.partition_seconds, 3),
                  FormatDouble(row.partition_speedup, 2) + "x",
                  FormatDouble(row.evaluate_seconds, 3),
                  FormatDouble(row.evaluate_speedup, 2) + "x"});
    out.rows.push_back(row);
  }
  std::printf("%s: %zu txns, train cost %s (identical at every thread count)\n",
              name.c_str(), out.trace_txns, Pct(out.train_cost).c_str());
  std::printf("%s\n", table.ToString().c_str());
  return out;
}

std::string ToJson(const std::vector<WorkloadScaling>& all) {
  std::string out = "{\n";
  out += "  \"bench\": \"parallel_search\",\n";
  out += "  \"hardware_concurrency\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  out += "  \"workloads\": [\n";
  for (size_t w = 0; w < all.size(); ++w) {
    const WorkloadScaling& ws = all[w];
    out += "    {\"workload\": \"" + ws.workload + "\", \"trace_txns\": " +
           std::to_string(ws.trace_txns) + ", \"train_cost\": " +
           FormatDouble(ws.train_cost, 6) + ", \"rows\": [\n";
    for (size_t i = 0; i < ws.rows.size(); ++i) {
      const ScalingRow& r = ws.rows[i];
      out += "      {\"threads\": " + std::to_string(r.threads) +
             ", \"partition_seconds\": " + FormatDouble(r.partition_seconds, 6) +
             ", \"partition_speedup\": " + FormatDouble(r.partition_speedup, 3) +
             ", \"evaluate_seconds\": " + FormatDouble(r.evaluate_seconds, 6) +
             ", \"evaluate_speedup\": " + FormatDouble(r.evaluate_speedup, 3) + "}";
      out += i + 1 < ws.rows.size() ? ",\n" : "\n";
    }
    out += "    ]}";
    out += w + 1 < all.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  InitObs(argc, argv);
  const std::string out_dir = OutDir(argc, argv);
  // --quick shrinks both traces for CI smoke runs; --tpcc_txns/--tpce_txns
  // override either directly.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") quick = true;
  }
  const size_t tpcc_txns = static_cast<size_t>(
      ArgInt(argc, argv, "--tpcc_txns", quick ? 8000 : 30000));
  const size_t tpce_txns = static_cast<size_t>(
      ArgInt(argc, argv, "--tpce_txns", quick ? 4000 : 12000));

  PrintHeader("Parallel pipeline scaling: Jecb::Partition and Evaluate()",
              "JECB solves in seconds (Sec. 7.5); the thread pool divides "
              "that further on multi-core hardware while reproducing the "
              "single-threaded solution bit for bit");
  std::printf("hardware_concurrency: %u%s\n\n", std::thread::hardware_concurrency(),
              quick ? " (quick)" : "");

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<WorkloadScaling> all;

  {
    TpccConfig cfg;
    cfg.warehouses = 8;
    cfg.districts_per_warehouse = 4;
    cfg.customers_per_district = 10;
    cfg.items = 50;
    cfg.initial_orders_per_district = 3;
    WorkloadBundle bundle = TpccWorkload(cfg).Make(tpcc_txns, 5);
    all.push_back(RunScaling("TPC-C", &bundle, thread_counts));
  }
  {
    TpceConfig cfg;
    cfg.customers = 400;
    WorkloadBundle bundle = TpceWorkload(cfg).Make(tpce_txns, 5);
    all.push_back(RunScaling("TPC-E", &bundle, thread_counts));
  }

  WriteBenchJson(out_dir, "parallel_search", ToJson(all));
  FinishObs(argc, argv);
  return 0;
}
