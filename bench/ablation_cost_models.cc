// Extension experiment (paper Conclusion): "a spectrum of increasingly
// complex cost functions" plugged into JECB's Phase-3 search — the paper's
// distributed-fraction cost, a sites-touched cost, and a weighted-runtime
// cost with a skew term. On TPC-E the models can disagree: a solution with
// slightly more distributed transactions that each touch fewer sites can win
// under the richer models.
#include "bench_util.h"
#include "partition/cost_model.h"
#include "workloads/tpce.h"

using namespace jecb;
using namespace jecb::bench;

int main(int argc, char** argv) {
  InitObs(argc, argv);
  PrintHeader("Ablation: Phase-3 cost models on TPC-E (k = 8)",
              "all models land on customer-rooted solutions here; the richer "
              "models additionally expose sites-touched and skew differences");

  TpceConfig cfg;
  cfg.customers = 500;
  WorkloadBundle bundle = TpceWorkload(cfg).Make(12000, 13);
  auto [train, test] = bundle.trace.SplitTrainTest(0.3);

  struct Model {
    const char* label;
    std::shared_ptr<const CostModel> model;
  };
  std::vector<Model> models;
  models.push_back({"distributed-fraction (paper)", nullptr});
  models.push_back({"sites-touched", std::make_shared<SitesTouchedCost>()});
  models.push_back({"weighted-runtime", std::make_shared<WeightedRuntimeCost>()});

  AsciiTable table({"cost model", "chosen attr", "distributed", "avg sites/dist txn",
                    "load skew"});
  for (const auto& m : models) {
    JecbOptions opt;
    opt.num_partitions = 8;
    opt.combiner.cost_model = m.model;
    auto res = Jecb(opt).Partition(bundle.db.get(), bundle.procedures, train);
    CheckOk(res.status(), "cost model bench");
    EvalResult ev = Evaluate(*bundle.db, res.value().solution, test);
    double avg_sites =
        ev.distributed_txns == 0
            ? 0.0
            : static_cast<double>(ev.partitions_touched) /
                  static_cast<double>(ev.distributed_txns);
    table.AddRow({m.label, res.value().combiner_report.chosen_attr, Pct(ev.cost()),
                  FormatDouble(avg_sites, 2), FormatDouble(ev.LoadSkew(), 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  FinishObs(argc, argv);
  return 0;
}
